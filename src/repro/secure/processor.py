"""The assembled secure processor: CPU + hierarchy + engine + keys.

:class:`SecureProcessor` is the top-level object a user of this library
instantiates.  It owns the die-private RSA key and builds, per program, the
entire protected execution environment:

1. unwrap the vendor's symmetric key (fails on the wrong processor — the
   anti-piracy property);
2. stand up DRAM, bus, and the engine of the configured protection scheme
   (resolved through the :mod:`repro.secure.schemes` registry);
3. let the untrusted loader place the ciphertext image in memory;
4. run the program inside a fresh XOM compartment, with every off-chip
   transfer going through the engine.

The returned :class:`RunReport` carries the program output, approximate
cycles, and every layer's statistics, which the examples print.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass

from repro.cpu.machine import Machine, MachineResult
from repro.cpu.registers import ZeroGuard
from repro.errors import ConfigurationError
from repro.memory.bus import MemoryBus
from repro.memory.cache import CacheConfig
from repro.memory.dram import DRAM
from repro.memory.hierarchy import LineEngine, MemoryHierarchy
from repro.secure.compartment import CompartmentManager, TaggedRegisterFile
from repro.secure.engine import LatencyParams
from repro.secure.integrity import (
    IntegrityConfig,
    IntegrityProvider,
    IntegritySpec,
    get_integrity,
)
from repro.secure.regions import RegionMap
from repro.secure.schemes import (
    EngineContext,
    SchemeSpec,
    all_schemes,
    get_scheme,
)
from repro.secure.snc import SNCConfig
from repro.secure.software import (
    SecureProgram,
    SegmentKind,
    install_image,
    unwrap_program_key,
)
from repro.crypto.rsa import RSAKeyPair

#: Builds the run's functional integrity provider; ``None`` result means
#: the run verifies nothing.  The default factory comes from the
#: :mod:`repro.secure.integrity` registry via the ``integrity`` key.
IntegrityFactory = Callable[[], "IntegrityProvider | None"]

#: The untrusted-loader attachment point of :meth:`SecureProcessor.run`:
#: called with the freshly installed DRAM and the bus *before* execution
#: starts.  Everything it receives is outside the security boundary, so
#: attack tests use it to plant a :class:`~repro.attacks.adversary.
#: MemoryAdversary` (tamper with the image, or attach a reactive bus
#: listener that rewrites memory mid-run).
LoaderHook = Callable[[DRAM, MemoryBus], None]

#: Which memory-protection scheme the processor applies — one member per
#: registered scheme (``BASELINE``, ``XOM``, ``OTP``, ``OTP_SPLIT``, ...),
#: generated from the registry so a new scheme file shows up here without
#: edits.  ``SecureProcessor`` also accepts plain registry keys, which is
#: the only way to address a scheme registered after this module imported.
EngineKind = enum.Enum(
    "EngineKind", {spec.key.upper(): spec.key for spec in all_schemes()}
)
EngineKind.__doc__ = (
    "Registered protection schemes, one member per "
    ":class:`~repro.secure.schemes.SchemeSpec` (value = registry key)."
)


def _engine_kind_for(key: str) -> EngineKind | None:
    """The enum member for a registry key, or None for schemes registered
    after this module was imported (addressable by key string only)."""
    try:
        return EngineKind(key)
    except ValueError:
        return None


@dataclass
class RunReport:
    """Everything a finished protected run exposes."""

    result: MachineResult
    engine_kind: EngineKind | None
    bus: MemoryBus
    engine: LineEngine
    hierarchy: MemoryHierarchy
    scheme: SchemeSpec
    #: The run's integrity provider (its ``stats`` carry the verification
    #: counts), ``None`` when the run verified nothing.
    integrity: IntegrityProvider | None = None

    @property
    def output(self) -> str:
        return self.result.output

    @property
    def cycles(self) -> int:
        return self.result.cycles


class SecureProcessor:
    """A processor die: private key burned in, schemes configurable."""

    def __init__(self, key_seed: str = "default-processor",
                 engine_kind: EngineKind | str = "otp",
                 latencies: LatencyParams | None = None,
                 snc_config: SNCConfig | None = None,
                 l1i_config: CacheConfig | None = None,
                 l1d_config: CacheConfig | None = None,
                 l2_config: CacheConfig | None = None,
                 integrity: str = "none",
                 integrity_factory: IntegrityFactory | None = None,
                 key_bits: int = 512):
        self.keypair = RSAKeyPair.generate(bits=key_bits, seed=key_seed)
        key = (
            engine_kind.value if isinstance(engine_kind, EngineKind)
            else str(engine_kind)
        )
        self.scheme = get_scheme(key)
        self.engine_kind = _engine_kind_for(self.scheme.key)
        self.latencies = latencies or LatencyParams()
        self.snc_config = snc_config or SNCConfig()
        self.l1i_config = l1i_config
        self.l1d_config = l1d_config
        self.l2_config = l2_config
        #: Which registered integrity spec protects runs; a custom
        #: ``integrity_factory`` overrides the registry resolution.
        self.integrity_spec: IntegritySpec = get_integrity(integrity)
        if integrity_factory is not None and integrity != "none":
            raise ConfigurationError(
                "pass either an integrity registry key or a custom "
                "integrity_factory, not both"
            )
        self.integrity_factory = integrity_factory
        self.compartments = CompartmentManager()

    @property
    def public_key(self):
        """What the vendor uses to target this processor."""
        return self.keypair.public

    # ------------------------------------------------------------------ run

    def run(self, program: SecureProgram, max_steps: int = 1_000_000,
            input_values: list[int] | None = None,
            on_install: LoaderHook | None = None) -> RunReport:
        """Install and execute a protected program end to end.

        ``on_install`` is the untrusted OS loader's slot: it receives the
        DRAM (holding the just-installed ciphertext image) and the bus
        before execution starts.  Both are outside the security boundary
        — this is where the attack tests mount their adversary.
        """
        self._check_scheme(program)
        key = unwrap_program_key(program, self.keypair.private)
        cipher = key.new_cipher()
        if program.line_bytes != 128 and self.l2_config is None:
            raise ConfigurationError(
                "non-default image line size requires an explicit L2 config"
            )

        dram = DRAM(line_bytes=program.line_bytes,
                    latency=self.latencies.memory)
        bus = MemoryBus()
        regions = program.plaintext_regions()
        integrity = self._build_integrity(program, key.material)
        engine = self.scheme.build_engine(self._engine_context(
            dram, cipher, bus, regions, integrity
        ))
        install_image(program, dram, integrity=integrity)
        if on_install is not None:
            on_install(dram, bus)

        hierarchy = self._build_hierarchy(engine)
        compartment = self.compartments.create(cipher)
        registers = ZeroGuard(TaggedRegisterFile(self.compartments))
        machine = Machine(
            hierarchy,
            entry_point=program.entry_point,
            registers=registers,
            on_xom_enter=lambda: self.compartments.enter(compartment.xom_id),
            on_xom_exit=self.compartments.exit,
        )
        if input_values:
            machine.input_queue.extend(input_values)

        self.compartments.enter(compartment.xom_id)
        try:
            result = machine.run(max_steps=max_steps)
        finally:
            hierarchy.flush()
            self.compartments.exit()
        return RunReport(
            result=result,
            engine_kind=self.engine_kind,
            bus=bus,
            engine=engine,
            hierarchy=hierarchy,
            scheme=self.scheme,
            integrity=integrity,
        )

    def run_plain(self, program, max_steps: int = 1_000_000,
                  input_values: list[int] | None = None) -> RunReport:
        """Run an *unprotected* :class:`PlainProgram` on the baseline path.

        The reference point for every comparison: same CPU, same caches,
        no crypto, plaintext on the bus."""
        spec = get_scheme("baseline")
        dram = DRAM(line_bytes=128, latency=self.latencies.memory)
        bus = MemoryBus()
        engine = spec.build_engine(self._engine_context(
            dram, None, bus, RegionMap(), None
        ))
        for segment in program.segments:
            dram.poke(segment.base, segment.data)
        hierarchy = self._build_hierarchy(engine)
        machine = Machine(hierarchy, entry_point=program.entry_point)
        if input_values:
            machine.input_queue.extend(input_values)
        result = machine.run(max_steps=max_steps)
        hierarchy.flush()
        return RunReport(
            result=result,
            engine_kind=EngineKind.BASELINE,
            bus=bus,
            engine=engine,
            hierarchy=hierarchy,
            scheme=spec,
        )

    def _build_integrity(self, program: SecureProgram,
                         key_material: bytes) -> IntegrityProvider | None:
        """Resolve the run's integrity provider.

        A custom ``integrity_factory`` wins; otherwise the registered
        spec builds one over a region covering the program's protected
        segments (rounded up to a power-of-two line count), keyed with
        the unwrapped program key — the only secret both the vendor and
        this die share."""
        if self.integrity_factory is not None:
            return self.integrity_factory()
        spec = self.integrity_spec
        config = self._integrity_config(program)
        return spec.build_provider(key_material, config)

    def _integrity_config(self, program: SecureProgram) -> IntegrityConfig:
        line_bytes = program.line_bytes
        end = max(
            (segment.base + len(segment.data)
             for segment in program.segments
             if segment.kind is not SegmentKind.PLAINTEXT),
            default=line_bytes,
        )
        n_lines = -(-end // line_bytes)  # ceil division
        n_lines = 1 << max(n_lines - 1, 0).bit_length()
        return IntegrityConfig(
            base_addr=0, n_lines=n_lines, line_bytes=line_bytes,
        )

    def _engine_context(self, dram, cipher, bus, regions,
                        integrity) -> EngineContext:
        return EngineContext(
            dram=dram, cipher=cipher, bus=bus, regions=regions,
            integrity=integrity, latencies=self.latencies,
            snc_config=self.snc_config,
        )

    def _build_hierarchy(self, engine: LineEngine) -> MemoryHierarchy:
        return MemoryHierarchy(
            engine,
            l1i_config=self.l1i_config,
            l1d_config=self.l1d_config,
            l2_config=self.l2_config,
        )

    def _check_scheme(self, program: SecureProgram) -> None:
        expected = self.scheme.protection
        if expected is None:
            raise ConfigurationError(
                f"the {self.scheme.key} processor runs unprotected "
                "programs only — use run_plain()"
            )
        if program.scheme is not expected:
            raise ConfigurationError(
                f"program packaged for the {program.scheme.value} scheme "
                f"cannot run on a {self.scheme.key} processor"
            )

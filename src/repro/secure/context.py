"""SNC handling across context switches — the question §4.3 leaves open.

The paper names two protection strategies for the SNC when the OS switches
tasks, and explicitly does not evaluate them ("the impact on the overall
performance in multi-task systems is currently open"):

1. **FLUSH** — encrypt-and-spill every entry to the in-memory table on the
   way out; the incoming task starts with a cold SNC.  Cost is paid at
   switch time (spill writes) and after (query misses to re-warm).
2. **TAG** — keep entries resident, tagged with their owner's XOM ID; no
   switch-time cost, but tasks share capacity and a task's entries can be
   evicted by another's traffic.

:class:`MultiTaskSNCModel` simulates round-robin execution of several
tasks' L2-miss streams under either strategy and reports the event counts
the ablation benchmark (``bench_ablation_context_switch``) prices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.secure.snc import SequenceNumberCache, SNCConfig, SNCPolicy


class SwitchStrategy(enum.Enum):
    FLUSH = "flush"
    TAG = "tag"


@dataclass
class ContextSwitchReport:
    """Event counts from a multi-task SNC simulation."""

    switches: int = 0
    flush_spills: int = 0  # entries written to memory at switch time
    query_hits: int = 0
    query_misses: int = 0
    update_hits: int = 0
    update_misses: int = 0
    evictions: int = 0

    @property
    def query_hit_rate(self) -> float:
        total = self.query_hits + self.query_misses
        return self.query_hits / total if total else 0.0


@dataclass
class TaskStream:
    """One task's L2-to-memory reference stream: (line_index, is_write)."""

    xom_id: int
    references: Sequence[tuple[int, bool]]


class MultiTaskSNCModel:
    """Round-robin tasks over one shared SNC under a switch strategy."""

    def __init__(self, config: SNCConfig | None = None,
                 strategy: SwitchStrategy = SwitchStrategy.TAG):
        if config is not None and config.policy is not SNCPolicy.LRU:
            raise ValueError("multi-task model requires the LRU policy")
        self.snc = SequenceNumberCache(config or SNCConfig())
        self.strategy = strategy
        self.report = ContextSwitchReport()
        # The spilled table: (xom_id, line_index) -> seq.  One entry per
        # line; fetching one back on a query miss costs a memory round trip.
        self._table: dict[tuple[int, int], int] = {}

    def _reference(self, xom_id: int, line_index: int, is_write: bool) -> None:
        tag = xom_id if self.strategy is SwitchStrategy.TAG else 0
        key = (xom_id, line_index)
        if is_write:
            seq = self.snc.update(line_index, tag)
            if seq is None:
                self.report.update_misses += 1
                seq = self._table.get(key, 0) + 1
                victim = self.snc.insert(line_index, seq, tag)
                self._note_eviction(victim, xom_id)
            else:
                self.report.update_hits += 1
            self._table[key] = seq
        else:
            seq = self.snc.query(line_index, tag)
            if seq is None:
                self.report.query_misses += 1
                seq = self._table.get(key, 0)
                victim = self.snc.insert(line_index, seq, tag)
                self._note_eviction(victim, xom_id)
            else:
                self.report.query_hits += 1

    def _note_eviction(self, victim, xom_id: int) -> None:
        if victim is None:
            return
        self.report.evictions += 1
        owner = victim.xom_id if self.strategy is SwitchStrategy.TAG else xom_id
        self._table[(owner, victim.line_index)] = victim.seq

    def _switch_out(self, xom_id: int) -> None:
        self.report.switches += 1
        if self.strategy is SwitchStrategy.FLUSH:
            for entry in self.snc.flush():
                self._table[(xom_id, entry.line_index)] = entry.seq
                self.report.flush_spills += 1

    def run(self, tasks: Sequence[TaskStream], quantum: int) -> ContextSwitchReport:
        """Interleave the tasks' streams, ``quantum`` references at a time."""
        cursors = [iter(task.references) for task in tasks]
        live = [True] * len(tasks)
        while any(live):
            for position, task in enumerate(tasks):
                if not live[position]:
                    continue
                consumed = 0
                for line_index, is_write in cursors[position]:
                    self._reference(task.xom_id, line_index, is_write)
                    consumed += 1
                    if consumed >= quantum:
                        break
                if consumed < quantum:
                    live[position] = False
                if any(live):
                    self._switch_out(task.xom_id)
        return self.report

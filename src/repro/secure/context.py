"""Multi-task SNC coordination — the question §4.3 leaves open.

The paper names two protection strategies for the SNC when the OS switches
tasks, and explicitly does not evaluate them ("the impact on the overall
performance in multi-task systems is currently open"):

1. **FLUSH** — encrypt-and-spill every entry to the in-memory table on the
   way out; the incoming task starts with a cold SNC.  Cost is paid at
   switch time (spill writes) and after (query misses to re-warm).
2. **TAG** — keep entries resident, tagged with their owner's XOM ID; no
   switch-time cost, but tasks share capacity and a task's entries can be
   evicted by another's traffic.

Both strategies are implemented as :class:`~repro.secure.snc_policy.
SNCPolicyCore` hooks (``on_switch_out`` / ``on_switch_in``), so every
registered scheme's state machine — the paper's Algorithm 1 *and* variants
like ``otp_split`` — handles context switches identically in the
functional and timing layers.  This module contributes only the
coordination: :class:`TaskContexts` keeps **one core per task over one
shared** :class:`~repro.secure.snc.SequenceNumberCache` (whose entries are
already owner-tagged) and routes switch events through the hooks.  It
holds no SNC decision logic of its own.

The evaluation drives this through the scenario pipeline
(:func:`repro.eval.pipeline.simulate_scenario`) fed by a
:class:`~repro.workloads.sources.MultiTaskInterleaver`; the §4.3 cost
table comes out of ``benchmarks/bench_ablation_context_switch.py``.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.secure.snc import Evicted, SequenceNumberCache
from repro.secure.snc_policy import SNCPolicyCore, SwitchStrategy

__all__ = ["SwitchStrategy", "TaskContexts"]

#: Fetch one spilled entry for (xom_id, line_index) — the per-task view of
#: the in-memory table.
TaskFetch = Callable[[int, int], int]

#: Persist one evicted entry; ``Evicted.xom_id`` names the owner, so one
#: shared callback serves every task.
TaskSpill = Callable[[Evicted], None]

#: Builds one task's policy core (the scheme registry supplies variants).
CoreFactory = Callable[..., SNCPolicyCore]


class TaskContexts:
    """Per-task :class:`SNCPolicyCore` instances over one shared SNC.

    Each task gets its own core — its own XOM id (the SNC owner tag), its
    own direct-encryption set, its own slice of the spill table — built
    lazily by ``core_factory`` the first time the task runs.  The §4.3
    switch strategies live in the cores' ``on_switch_out``/``on_switch_in``
    hooks; :meth:`switch_to` only routes the event.
    """

    def __init__(self, snc: SequenceNumberCache, *,
                 core_factory: CoreFactory | None = None,
                 strategy: SwitchStrategy = SwitchStrategy.TAG,
                 fetch_entry: TaskFetch | None = None,
                 spill_entry: TaskSpill | None = None,
                 initial_task: int = 0):
        self.snc = snc
        self.strategy = strategy
        self._factory = core_factory or SNCPolicyCore
        self._fetch_entry = fetch_entry or (lambda xom_id, line_index: 0)
        self._spill_entry = spill_entry or (lambda victim: None)
        self._cores: dict[int, SNCPolicyCore] = {}
        self.current = self.core_for(initial_task)

    def core_for(self, xom_id: int) -> SNCPolicyCore:
        """The task's core, created on first use."""
        core = self._cores.get(xom_id)
        if core is None:
            # Bind the callbacks by value (default args), not through a
            # closure over ``self``: a core holding its owner would make
            # every task context a reference cycle only the cyclic
            # collector can free.
            core = self._factory(
                self.snc,
                xom_id=xom_id,
                fetch_entry=lambda line, xom=xom_id,
                fetch=self._fetch_entry: fetch(xom, line),
                spill_entry=self._spill_entry,
                switch_strategy=self.strategy,
            )
            self._cores[xom_id] = core
        return core

    def begin(self, xom_id: int) -> SNCPolicyCore:
        """Select the first running task without counting a switch."""
        self.current = self.core_for(xom_id)
        return self.current

    def switch_to(self, xom_id: int) -> int:
        """One OS context switch: deschedule the current task (its core's
        ``on_switch_out`` applies the strategy), schedule the next.
        Returns the number of entries spilled at switch time (0 under
        TAG)."""
        spilled = self.current.on_switch_out()
        self.current = self.core_for(xom_id)
        self.current.on_switch_in()
        return spilled

    @property
    def task_ids(self) -> tuple[int, ...]:
        """Every task that has run so far, in first-run order."""
        return tuple(self._cores)

"""Vendor-side software packaging and processor-side installation (§2.1).

The distribution protocol the paper describes:

1. the vendor picks a fast symmetric key ``Ks`` and encrypts the program
   with it — code with virtual-address seeds (§3.4.1), initialized data
   with version-0 seeds, declared *plaintext* segments (shared libraries,
   inputs, §4.3) not at all;
2. the vendor wraps ``Ks`` under the target processor's public key and
   ships ``(wrapped key, ciphertext image)``;
3. the processor unwraps ``Ks`` with its die-private key **once** at
   program start (slow, asymmetric), then uses ``Ks`` per line (fast).

Software encrypted for processor A will not run on processor B — B's
private key unwraps garbage and the key-wrap padding check fails.  That is
the anti-piracy property, and it is a test.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.crypto.keys import CipherSuite, SymmetricKey
from repro.crypto.modes import ecb_encrypt, otp_transform
from repro.crypto.prng import HashDRBG
from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey, unwrap_key, wrap_key
from repro.errors import ConfigurationError
from repro.memory.dram import DRAM
from repro.secure.integrity import IntegrityProvider
from repro.secure.regions import Region, RegionMap
from repro.secure.seeds import SeedScheme


class SegmentKind(enum.Enum):
    """How a segment is protected in memory."""

    CODE = "code"  # OTP, virtual-address seeds, read-only
    DATA = "data"  # OTP, version-0 seeds initially, versioned on writeback
    PLAINTEXT = "plaintext"  # shared library / input data: no protection


class ProtectionScheme(enum.Enum):
    """Which engine the image is encrypted for.

    The vendor must target the customer's protection scheme: XOM processors
    decrypt lines directly (ECB over the line), OTP processors XOR with
    address-derived pads.  The two produce incompatible images."""

    DIRECT = "direct"  # XOM: E_K over each cipher block of the line
    OTP = "otp"  # the paper: line xor E_K(seed(VA, version 0))


@dataclass(frozen=True)
class Segment:
    """One contiguous piece of the program's address space."""

    base: int
    data: bytes
    kind: SegmentKind
    name: str = ""

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ConfigurationError("segment base must be non-negative")
        if not self.data:
            raise ConfigurationError(f"segment {self.name!r} is empty")


@dataclass(frozen=True)
class PlainProgram:
    """What comes out of the assembler/linker, before vendor encryption."""

    segments: tuple[Segment, ...]
    entry_point: int
    name: str = "a.out"


@dataclass(frozen=True)
class SecureProgram:
    """The shippable artifact: ciphertext image + wrapped key."""

    name: str
    suite: CipherSuite
    wrapped_key: int
    segments: tuple[Segment, ...]  # data field holds ciphertext for CODE/DATA
    entry_point: int
    line_bytes: int
    scheme: ProtectionScheme = ProtectionScheme.OTP

    def plaintext_regions(self) -> RegionMap:
        regions = RegionMap()
        for segment in self.segments:
            if segment.kind is SegmentKind.PLAINTEXT:
                regions.add(
                    Region(
                        segment.base,
                        segment.base + len(segment.data),
                        segment.name,
                    )
                )
        return regions


def _pad_to_lines(segment: Segment, line_bytes: int) -> tuple[int, bytes]:
    """Align a segment to whole lines (leading/trailing zero fill)."""
    start = segment.base - segment.base % line_bytes
    lead = segment.base - start
    total = lead + len(segment.data)
    tail = (-total) % line_bytes
    return start, b"\x00" * lead + segment.data + b"\x00" * tail


def package_program(program: PlainProgram, processor_key: RSAPublicKey,
                    suite: CipherSuite = CipherSuite.DES,
                    vendor_seed: bytes | str | int = "vendor",
                    line_bytes: int = 128,
                    scheme: ProtectionScheme = ProtectionScheme.OTP
                    ) -> SecureProgram:
    """Vendor-side: encrypt a program for one specific processor."""
    key = SymmetricKey.generate(suite, vendor_seed)
    cipher = key.new_cipher()
    seeds = SeedScheme(line_bytes=line_bytes, block_bytes=cipher.block_size)
    wrapped = wrap_key(
        processor_key, key.material,
        HashDRBG(f"wrap:{program.name}:{vendor_seed}"),
    )
    out_segments = []
    for segment in program.segments:
        if segment.kind is SegmentKind.PLAINTEXT:
            out_segments.append(segment)
            continue
        base, padded = _pad_to_lines(segment, line_bytes)
        encrypted = bytearray()
        for offset in range(0, len(padded), line_bytes):
            line_va = base + offset
            line = padded[offset : offset + line_bytes]
            if scheme is ProtectionScheme.DIRECT:
                encrypted.extend(ecb_encrypt(cipher, line))
                continue
            if segment.kind is SegmentKind.CODE:
                seed = seeds.instruction_seed(line_va)
            else:
                seed = seeds.data_seed(line_va, 0)
            encrypted.extend(otp_transform(cipher, seed, line))
        out_segments.append(
            Segment(base, bytes(encrypted), segment.kind, segment.name)
        )
    return SecureProgram(
        name=program.name,
        suite=suite,
        wrapped_key=wrapped,
        segments=tuple(out_segments),
        entry_point=program.entry_point,
        line_bytes=line_bytes,
        scheme=scheme,
    )


def unwrap_program_key(program: SecureProgram,
                       private_key: RSAPrivateKey) -> SymmetricKey:
    """Processor-side: recover ``Ks`` (the slow once-per-program step).

    Raises :class:`~repro.errors.KeyExchangeError` on the wrong processor —
    the piracy case."""
    material = unwrap_key(private_key, program.wrapped_key)
    return SymmetricKey(program.suite, material)


def install_image(program: SecureProgram, dram: DRAM,
                  integrity: IntegrityProvider | None = None) -> None:
    """Copy the (ciphertext) image into untrusted memory.

    This is what the untrusted OS loader does — it only ever handles
    ciphertext, so it needs no trust.  If an integrity provider is given,
    every covered line of the image is recorded (the loader initialising
    the MAC table / hash tree)."""
    for segment in program.segments:
        dram.poke(segment.base, segment.data)
        if integrity is None or segment.kind is SegmentKind.PLAINTEXT:
            continue
        base, padded = _pad_to_lines(segment, program.line_bytes)
        for offset in range(0, len(padded), program.line_bytes):
            line_addr = base + offset
            if integrity.covers(line_addr):
                integrity.record_line(
                    line_addr, padded[offset : offset + program.line_bytes]
                )

"""The SNC decision logic (Algorithm 1, §4.2) as one shared state machine.

Historically this logic existed twice — once in the byte-moving
:class:`~repro.secure.otp_engine.OTPEngine` and once in the byte-free
:class:`~repro.timing.model.SNCTimingSim` — held consistent only by a
cross-check test.  :class:`SNCPolicyCore` is the single implementation both
layers now drive, so the functional and timing paths *cannot* drift: the
engine supplies real table fetch/spill callbacks (moving encrypted
sequence-number blocks over the bus), the timing simulator supplies
counting callbacks backed by a plain dict, and both get back the same
:class:`ReadDecision`/:class:`WriteDecision` stream for the same trace.

Scheme variants subclass the core and override the ``_read_query_miss`` /
``_write_update_hit`` / ``_write_update_miss`` hooks — see the
``otp_split`` spec in :mod:`repro.secure.schemes.otp_split` for the
paper's §4.2 split-sequence-number variant done this way.  The §4.3
context-switch strategies are core behavior too: ``on_switch_out`` /
``on_switch_in`` implement FLUSH (encrypt-and-spill on the way out) and
TAG (owner-tagged entries stay resident), selected by
:class:`SwitchStrategy`; :class:`~repro.secure.context.TaskContexts`
coordinates one core per task over a shared SNC.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from typing import NamedTuple

from repro.errors import ConfigurationError
from repro.secure.snc import Evicted, SequenceNumberCache, SNCPolicy

#: Fetch one spilled sequence number for a line index (the engine decrypts
#: a table entry; the timing simulator reads a dict).
FetchEntry = Callable[[int], int]

#: Persist one evicted entry (the engine encrypts-and-stores; the timing
#: simulator records the value and counts the transfer).
SpillEntry = Callable[[Evicted], None]


class SwitchStrategy(enum.Enum):
    """SNC handling across OS context switches (§4.3).

    The paper names both and leaves their cost "currently open":

    * :attr:`FLUSH` — encrypt-and-spill every resident entry to the
      in-memory table on the way out; the incoming task starts with a
      cold SNC.  Cost is paid at switch time (spill writes) and after
      (query misses to re-warm).
    * :attr:`TAG` — entries stay resident, tagged with their owner's XOM
      ID; no switch-time cost, but tasks share capacity and one task's
      entries can be evicted by another's traffic.
    """

    FLUSH = "flush"
    TAG = "tag"


class ReadClass(enum.Enum):
    """How an L2 read miss is serviced — what the timing model prices."""

    OVERLAPPED = "overlapped"  # seed on chip: MAX(memory, crypto) + 1
    SEQNUM_MISS = "seqnum-miss"  # table fetch on the critical path
    DIRECT = "direct"  # direct-encryption fallback: the XOM serial path


class WriteClass(enum.Enum):
    """How an L2 writeback is serviced (always off the critical path)."""

    UPDATE_HIT = "update-hit"
    UPDATE_MISS = "update-miss"  # resolved with a sequence number anyway
    REJECTED = "rejected"  # direct-encryption fallback


class ReadDecision(NamedTuple):
    """Outcome of one read miss: the path taken and the pad version.

    ``seq`` is ``None`` exactly when ``kind`` is :attr:`ReadClass.DIRECT`
    (a directly-encrypted line has no pad version).  Both decision types
    are named tuples rather than frozen dataclasses: one is allocated per
    classified event in the evaluation hot loops, and tuple construction
    is several hundred nanoseconds cheaper per call at the same field
    API."""

    kind: ReadClass
    seq: int | None


class WriteDecision(NamedTuple):
    """Outcome of one writeback: ``seq`` is the new pad version, or
    ``None`` when ``kind`` is :attr:`WriteClass.REJECTED`."""

    kind: WriteClass
    seq: int | None


class SNCPolicyCore:
    """The paper's query/update decision procedure over one SNC.

    Owns the per-line fallback state the decisions depend on — which lines
    fell back to direct encryption (``direct_lines``) and the highest
    sequence number ever issued under no-replacement (``fallback_seq``) —
    and delegates actual sequence-number movement to the two callbacks.
    """

    def __init__(self, snc: SequenceNumberCache, *, xom_id: int = 0,
                 fetch_entry: FetchEntry | None = None,
                 spill_entry: SpillEntry | None = None,
                 switch_strategy: SwitchStrategy = SwitchStrategy.TAG):
        if (switch_strategy is SwitchStrategy.FLUSH
                and snc.config.policy is not SNCPolicy.LRU):
            raise ConfigurationError(
                "the FLUSH switch strategy spills to the in-memory table, "
                "which only the LRU policy maintains"
            )
        self.snc = snc
        self.xom_id = xom_id
        self.switch_strategy = switch_strategy
        self._fetch_entry = fetch_entry or (lambda line_index: 0)
        self._spill_entry = spill_entry or (lambda victim: None)
        # Lines that fell back to direct encryption.  Conceptually a
        # metadata bit travelling with the line; kept here because
        # untrusted memory cannot be trusted to keep it.
        self.direct_lines: set[int] = set()
        # Highest sequence number ever issued per line under
        # no-replacement, so a line re-admitted after a flush can never
        # reuse a pad.  (LRU recovers this from the spill table;
        # no-replacement has no table.)
        self.fallback_seq: dict[int, int] = {}

    # ------------------------------------------------------------------ reads

    def read(self, line_index: int) -> ReadDecision:
        """Classify one L2 read miss and apply its SNC state effects."""
        seq = self.snc.query(line_index, self.xom_id)
        if seq is not None:
            return ReadDecision(ReadClass.OVERLAPPED, seq)
        return self._read_query_miss(line_index)

    def _read_query_miss(self, line_index: int) -> ReadDecision:
        if self.snc.config.policy is SNCPolicy.NO_REPLACEMENT:
            if line_index in self.direct_lines:
                return ReadDecision(ReadClass.DIRECT, None)
            # Untouched vendor-image line: version-0 pad, overlapped.
            return ReadDecision(ReadClass.OVERLAPPED, 0)
        return self._read_table_fetch(line_index)

    def _read_table_fetch(self, line_index: int) -> ReadDecision:
        """Algorithm 1, query-miss arm: fetch the spilled number, install
        it (spilling a victim), decrypt with it."""
        seq = self._fetch_entry(line_index)
        self._install(line_index, seq)
        return ReadDecision(ReadClass.SEQNUM_MISS, seq)

    # ----------------------------------------------------------------- writes

    def write(self, line_index: int) -> WriteDecision:
        """Classify one L2 writeback and apply its SNC state effects."""
        seq = self.snc.update(line_index, self.xom_id)
        if seq is not None:
            return self._write_update_hit(line_index, seq)
        return self._write_update_miss(line_index)

    def _write_update_hit(self, line_index: int, seq: int) -> WriteDecision:
        return WriteDecision(WriteClass.UPDATE_HIT, seq)

    def _write_update_miss(self, line_index: int) -> WriteDecision:
        if self.snc.config.policy is SNCPolicy.LRU:
            # Algorithm 1, update-miss arm: fetch, increment, install.
            seq = self._fetch_entry(line_index) + 1
            self._install(line_index, seq)
            return WriteDecision(WriteClass.UPDATE_MISS, seq)
        if not self.snc.can_insert(line_index):
            self.snc.note_rejection()
            self.direct_lines.add(line_index)
            return WriteDecision(WriteClass.REJECTED, None)
        seq = self.fallback_seq.get(line_index, 0) + 1
        self.fallback_seq[line_index] = seq
        self.snc.insert(line_index, seq, self.xom_id)
        self.direct_lines.discard(line_index)
        return WriteDecision(WriteClass.UPDATE_MISS, seq)

    # ------------------------------------------------ context switches (§4.3)

    def on_switch_out(self) -> int:
        """This task is being descheduled; returns the entries spilled.

        Under :attr:`SwitchStrategy.FLUSH` every entry this task owns is
        spilled to the in-memory table (through the same ``spill_entry``
        callback evictions use — the engine encrypts-and-stores, the
        timing simulator counts the transfers) and dropped from the SNC.
        Under :attr:`SwitchStrategy.TAG` entries stay resident under the
        owner tag and the switch costs nothing.
        """
        if self.switch_strategy is not SwitchStrategy.FLUSH:
            return 0
        spilled = self.snc.drop_task(self.xom_id)
        for victim in spilled:
            self._spill_entry(victim)
        return len(spilled)

    def on_switch_in(self) -> None:
        """This task is being scheduled; nothing to do under either
        strategy (FLUSH re-warms through query misses, TAG entries never
        left).  Variant schemes may override — e.g. to prefetch."""

    def write_descheduled(self, line_index: int) -> WriteDecision:
        """A dirty eviction of this task's line arriving while the task
        is *descheduled* (a shared L2 can evict it during another task's
        quantum).

        Under TAG this is an ordinary write — entries are legitimately
        resident under the owner tag.  Under FLUSH the SNC holds only
        the running task's entries, so the update must leave no
        residency: a table read-modify-write through the fetch/spill
        callbacks (:meth:`_write_detached`, the per-scheme hook).
        """
        if self.switch_strategy is not SwitchStrategy.FLUSH:
            return self.write(line_index)
        return self._write_detached(line_index)

    def _write_detached(self, line_index: int) -> WriteDecision:
        seq = self._fetch_entry(line_index) + 1
        self._spill_entry(Evicted(line_index, seq, self.xom_id))
        return WriteDecision(WriteClass.UPDATE_MISS, seq)

    # -------------------------------------------------------------- internals

    def _install(self, line_index: int, seq: int) -> None:
        victim = self.snc.insert(line_index, seq, self.xom_id)
        if victim is not None:
            self._spill_entry(victim)

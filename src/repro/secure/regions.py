"""Address-space region attributes for the secure engines.

§4.3 of the paper: shared library code and program inputs arrive in
plaintext and are *not* one-time-pad protected (they are meant for multiple
users / come from I/O), so their lines bypass the crypto path and need no
SNC entries.  The engines consult a :class:`RegionMap` to decide.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Region:
    """A half-open address interval ``[start, end)``."""

    start: int
    end: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError(
                f"bad region bounds [{self.start:#x}, {self.end:#x})"
            )

    def __contains__(self, addr: int) -> bool:
        return self.start <= addr < self.end


class RegionMap:
    """A set of non-overlapping plaintext regions with O(log n) lookup."""

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._regions: list[Region] = []

    def add(self, region: Region) -> None:
        position = bisect_right(self._starts, region.start)
        before = self._regions[position - 1] if position > 0 else None
        after = self._regions[position] if position < len(self._regions) else None
        if before is not None and before.end > region.start:
            raise ConfigurationError(
                f"region {region} overlaps {before}"
            )
        if after is not None and region.end > after.start:
            raise ConfigurationError(
                f"region {region} overlaps {after}"
            )
        self._starts.insert(position, region.start)
        self._regions.insert(position, region)

    def is_plaintext(self, addr: int) -> bool:
        position = bisect_right(self._starts, addr)
        if position == 0:
            return False
        return addr in self._regions[position - 1]

    def __len__(self) -> int:
        return len(self._regions)

"""Integrity spec: per-line keyed MACs — fast, replay-blind.

One HMAC per line, bound to the line address, tag stored in untrusted
memory.  Catches spoofing and splicing at a flat one-hash verification
cost; **intentionally defeated by replay** (a stale (line, tag) pair is
authentic), which is the failure mode that motivates the hash tree and
which the attack-matrix tests demonstrate end-to-end.
"""

from __future__ import annotations

from repro.secure.integrity import (
    IntegrityConfig,
    IntegrityEventCounts,
    IntegrityProvider,
    IntegritySpec,
    hash_critical_cycles,
    register,
)
from repro.secure.integrity.providers import MACIntegrity


def _build_provider(key: bytes,
                    config: IntegrityConfig) -> IntegrityProvider:
    return MACIntegrity(key, tag_bytes=config.tag_bytes)


class MACTimingModel:
    """Byte-free twin of :class:`MACIntegrity`: count, don't hash.

    Every verification costs exactly one HMAC.  Like the hash-tree twin,
    this assumes honest post-install execution: every covered line the
    program reads was recorded — at image install
    (:func:`~repro.secure.software.install_image` tags every
    non-plaintext image line) or by an earlier writeback — so the
    functional provider's untagged-line shortcut (verifying a line with
    no tag compares nothing and hashes nothing) never fires on a priced
    trace.
    """

    def __init__(self, config: IntegrityConfig,
                 provider_key: str = "mac"):
        self.counts = IntegrityEventCounts(provider=provider_key)

    def verify(self, line_index: int, critical: bool = True) -> None:
        counts = self.counts
        counts.verifications += 1
        counts.hashes_computed += 1
        counts.verify_hashes += 1
        if critical:
            counts.critical_hashes += 1

    def update(self, line_index: int) -> None:
        counts = self.counts
        counts.updates += 1
        counts.hashes_computed += 1

    def reset_counts(self) -> None:
        self.counts.reset()


SPEC = register(IntegritySpec(
    key="mac",
    title="per-line MACs",
    summary="address-bound HMAC per line: flat cost, blind to replay",
    detects=frozenset({"spoof", "splice"}),
    build_provider=_build_provider,
    price=hash_critical_cycles,
    build_timing_model=MACTimingModel,
))

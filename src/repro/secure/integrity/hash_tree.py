"""Integrity spec: the plain Merkle hash tree — complete, expensive.

A tree over the protected region with the root inside the security
boundary catches all three active attacks, but every verification walks
leaf-to-root: ``depth + 1`` hash units on the read critical path.  That
cost is the reason Gassend et al. add the trusted node cache
(``hash_tree_cached``); keeping the uncached tree registered gives the
evaluation its upper bound.

:class:`HashTreeTimingModel` is the byte-free twin both tree specs share:
the same leaf-to-root walk, the same FIFO trusted-node-cache behaviour,
no digests — the randomized cross-check tests pin its counters to the
functional provider's :class:`~repro.secure.integrity.IntegrityStats`.
"""

from __future__ import annotations

from repro.secure.integrity import (
    IntegrityConfig,
    IntegrityEventCounts,
    IntegrityProvider,
    IntegritySpec,
    hash_critical_cycles,
    register,
)
from repro.secure.integrity.providers import HashTreeIntegrity
from repro.utils.intmath import log2_exact


def _build_provider(key: bytes,
                    config: IntegrityConfig) -> IntegrityProvider:
    return HashTreeIntegrity(
        base_addr=config.base_addr, n_lines=config.n_lines,
        line_bytes=config.line_bytes, node_cache_entries=0,
    )


class HashTreeTimingModel:
    """Byte-free twin of :class:`HashTreeIntegrity`.

    The walk shape — leaf digest, then one hash per level until a trusted
    cached ancestor (or the root) — is all that timing needs, so the
    model keeps only the trusted cache's *occupancy* (a digest-free dict
    with the provider's exact FIFO store-and-evict behaviour) and the
    counters.  It assumes honest execution: the timing layer never sees
    tampering, so every cache hit terminates the walk like the
    functional provider's successful comparison does.
    """

    def __init__(self, config: IntegrityConfig,
                 node_cache_entries: int = 0,
                 provider_key: str = "hash_tree"):
        self.base_line = config.base_line
        self.n_lines = config.n_lines
        self.depth = log2_exact(config.n_lines)
        self.counts = IntegrityEventCounts(provider=provider_key)
        self._cache_entries = node_cache_entries
        self._cache: dict[tuple[int, int], None] = {}

    def _cache_store(self, level: int, index: int) -> None:
        if self._cache_entries <= 0:
            return
        cache = self._cache
        if len(cache) >= self._cache_entries:
            cache.pop(next(iter(cache)))
        cache[(level, index)] = None

    def verify(self, line_index: int, critical: bool = True) -> None:
        index = line_index - self.base_line
        if not 0 <= index < self.n_lines:
            return  # outside the protected region
        counts = self.counts
        counts.verifications += 1
        hashes = 1  # the leaf digest
        cache = self._cache
        for level in range(self.depth):
            if (level, index) in cache:
                counts.node_cache_hits += 1
                break
            hashes += 1
            index //= 2
        counts.hashes_computed += hashes
        counts.verify_hashes += hashes
        if critical:
            counts.critical_hashes += hashes

    def update(self, line_index: int) -> None:
        index = line_index - self.base_line
        if not 0 <= index < self.n_lines:
            return
        counts = self.counts
        counts.updates += 1
        counts.hashes_computed += self.depth + 1
        self._cache_store(0, index)
        for level in range(self.depth):
            index //= 2
            self._cache_store(level + 1, index)

    def reset_counts(self) -> None:
        self.counts.reset()


SPEC = register(IntegritySpec(
    key="hash_tree",
    title="Merkle hash tree",
    summary="root-anchored tree: catches replay, walks to the root "
            "every verify",
    detects=frozenset({"spoof", "splice", "replay"}),
    build_provider=_build_provider,
    price=hash_critical_cycles,
    build_timing_model=HashTreeTimingModel,
))

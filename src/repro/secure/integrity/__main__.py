"""Registry completeness check: every integrity spec runs a program.

Run with ``python -m repro.secure.integrity``.  For each registered
:class:`~repro.secure.integrity.IntegritySpec`, the store/load probe
program executes end-to-end through
:class:`~repro.secure.processor.SecureProcessor` under the paper's OTP
scheme with that integrity configuration — provider construction, image
recording at install, per-line verification on every fetch — and the
output is checked.  Specs that claim to detect spoofing are then re-run
with a corrupted image (the untrusted-loader hook flips one bit) and
must raise :class:`~repro.errors.TamperDetected`.  Exits non-zero if any
spec fails, so CI catches a provider whose layers drifted.
"""

from __future__ import annotations

import sys

from repro.cpu.assembler import assemble
from repro.errors import TamperDetected
from repro.secure.integrity import all_integrities
from repro.secure.processor import SecureProcessor
from repro.secure.schemes.__main__ import _EXPECTED, _SOURCE
from repro.secure.software import SegmentKind, package_program


def _processor(spec_key: str) -> SecureProcessor:
    return SecureProcessor(
        key_seed="integrity-check", engine_kind="otp", integrity=spec_key,
    )


def check_integrity(spec, plain) -> str | None:
    """Run one spec end-to-end; return an error string or None."""
    cpu = _processor(spec.key)
    program = package_program(
        plain, cpu.public_key, vendor_seed="integrity-check",
    )
    try:
        report = cpu.run(program)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the sweep
        return f"raised {type(exc).__name__}: {exc}"
    if report.output != _EXPECTED:
        return f"output {report.output!r} != expected {_EXPECTED!r}"
    if spec.key != "none" and report.integrity is None:
        return "spec built no provider"
    if report.integrity is not None and (
        report.integrity.stats.verifications == 0
    ):
        return "provider never verified a line"

    if "spoof" not in spec.detects:
        return None
    # Detection half: the untrusted loader corrupts one code line; the
    # first fetch of it must trip the provider.
    code_base = next(
        segment.base for segment in program.segments
        if segment.kind is SegmentKind.CODE
    )

    def corrupt(dram, bus) -> None:
        line = bytearray(dram.read_line(code_base))
        line[0] ^= 0x01
        dram.write_line(code_base, bytes(line))

    cpu = _processor(spec.key)
    program = package_program(
        plain, cpu.public_key, vendor_seed="integrity-check",
    )
    try:
        cpu.run(program, on_install=corrupt)
    except TamperDetected:
        return None
    return "corrupted image executed without TamperDetected"


def main() -> int:
    plain = assemble(_SOURCE, name="integrity-check")
    specs = all_integrities()
    print(f"integrity registry completeness check ({len(specs)} specs):")
    failures = []
    for spec in specs:
        error = check_integrity(spec, plain)
        if error is None:
            status = "ok"
        else:
            status = f"FAIL ({error})"
            failures.append(f"{spec.key}: {error}")
        detects = ",".join(sorted(spec.detects)) or "-"
        print(f"  {spec.key:<18} {spec.title:<28} "
              f"detects={detects:<20} {status}")
    if failures:
        print(f"{len(failures)} spec(s) failed", file=sys.stderr)
        return 1
    print("every registered integrity spec ran end-to-end")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""The memory-integrity registry: one declaration per provider, all layers.

The paper secures *privacy* and defers *integrity* to Gassend et al.'s
cached hash trees (§2.2).  This package makes that deferred piece a
first-class axis of the reproduction, in the same registry idiom as the
protection schemes (:mod:`repro.secure.schemes`): each way of protecting
memory integrity is one :class:`IntegritySpec`, declared in one file,
consumed by every layer:

* ``build_provider`` — the byte-moving functional provider
  (:class:`~repro.secure.processor.SecureProcessor` resolves through it
  and hands the provider to the scheme's engine);
* ``build_timing_model`` — the byte-free counter twin the trace pipeline
  drives (``None`` for ``none``, which verifies nothing);
* ``price`` — the extra cycles one benchmark's
  :class:`IntegrityEventCounts` cost under a
  :class:`~repro.secure.engine.LatencyParams` (the scheme pricers add it
  on top of every scheme via
  :func:`repro.timing.model.integrity_cycles`);
* ``detects`` — which of the three XOM active attacks (``spoof``,
  ``splice``, ``replay``) the provider catches; the attack-matrix tests
  enumerate the registry through it.

Every module in this package (not starting with ``_``) is auto-imported
and self-registers its spec, so **adding an integrity provider is adding
one file** — see ``docs/integrity.md`` for the walkthrough.  ``python -m
repro.secure.integrity`` runs every registered spec end-to-end through
:class:`SecureProcessor` (including a tamper check) as a completeness
check.
"""

from __future__ import annotations

import importlib
import pkgutil
from collections.abc import Callable
from dataclasses import dataclass, fields
from typing import Protocol, runtime_checkable

from repro.errors import ConfigurationError
from repro.secure.engine import LatencyParams
from repro.secure.integrity.providers import (
    HashTreeIntegrity,
    IntegrityStats,
    MACIntegrity,
)
from repro.utils.intmath import is_power_of_two

#: The three active attacks of XOM's threat model; ``IntegritySpec.detects``
#: is a subset of these.
ATTACK_KINDS = frozenset({"spoof", "splice", "replay"})


@runtime_checkable
class IntegrityProvider(Protocol):
    """What the engines and the loader need from a functional provider.

    Implementations carry their counters in ``stats`` and raise
    :class:`~repro.errors.TamperDetected` /
    :class:`~repro.errors.ReplayDetected` from :meth:`verify_line`.
    """

    stats: IntegrityStats

    def covers(self, line_addr: int) -> bool:
        """Whether the provider protects this line."""
        ...

    def record_line(self, line_addr: int, ciphertext: bytes) -> None:
        """A covered line was (re)written: refresh its metadata."""
        ...

    def verify_line(self, line_addr: int, ciphertext: bytes) -> None:
        """A covered line arrived from memory: verify or raise."""
        ...


@dataclass
class IntegrityEventCounts(IntegrityStats):
    """The timing layer's view of one integrity configuration.

    Extends the functional :class:`IntegrityStats` field set (the
    cross-check tests pin those fields to a provider driven with the
    same stream) with what only pricing needs:

    * ``provider`` — the registry key whose pricer interprets the counts
      (travels with the counts so cached events stay self-describing);
    * ``verify_hashes`` — the subset of ``hashes_computed`` spent in
      verification walks (the rest is update-side tree maintenance);
    * ``critical_hashes`` — the subset of ``verify_hashes`` performed
      while a *load* miss stalled the CPU; update-side and
      write-allocate hashing hides in the store path like every other
      write cost (§3.4).
    """

    provider: str = "none"
    verify_hashes: int = 0
    critical_hashes: int = 0

    def reset(self) -> None:
        for field in fields(self):
            if field.name != "provider":
                setattr(self, field.name, 0)


class IntegrityTimingModel(Protocol):
    """What the trace pipeline drives, one per requested configuration."""

    counts: IntegrityEventCounts

    def verify(self, line_index: int, critical: bool = True) -> None:
        """An L2 miss fetched this line through the engine."""
        ...

    def update(self, line_index: int) -> None:
        """A dirty L2 line was written back through the engine."""
        ...

    def reset_counts(self) -> None:
        """Zero the counters while keeping warm state (end of warmup)."""
        ...


@dataclass(frozen=True)
class IntegrityConfig:
    """Geometry of one integrity configuration, shared by both layers.

    The functional provider covers byte addresses ``[base_addr,
    base_addr + n_lines * line_bytes)``; the byte-free timing model
    covers the same region in line-index units.  ``node_cache_entries``
    sizes the trusted on-chip node cache (hash trees only;
    ``hash_tree`` ignores it by design), ``tag_bytes`` the per-line MAC
    truncation (MAC only).
    """

    base_addr: int = 0
    n_lines: int = 1 << 19
    line_bytes: int = 128
    node_cache_entries: int = 0
    tag_bytes: int = 16

    def __post_init__(self) -> None:
        if not is_power_of_two(self.n_lines):
            raise ConfigurationError(
                "integrity coverage needs a power-of-two line count"
            )
        if self.base_addr < 0 or self.base_addr % self.line_bytes:
            raise ConfigurationError("protected base must be line-aligned")
        if self.node_cache_entries < 0:
            raise ConfigurationError("node cache entries must be >= 0")

    @property
    def base_line(self) -> int:
        return self.base_addr // self.line_bytes


@dataclass(frozen=True)
class IntegritySpec:
    """One way of protecting memory integrity, declared once."""

    key: str  # registry key: "none", "mac", "hash_tree", ...
    title: str  # human name for tables and docs
    summary: str  # one-line description
    #: Which of :data:`ATTACK_KINDS` the provider catches; the attack
    #: tests assert detection for these and *non*-detection otherwise.
    detects: frozenset[str]
    #: Functional layer: build the byte-moving provider for one run
    #: (``key`` is the secret the provider may MAC with).  ``None``
    #: result = the run carries no integrity machinery.
    build_provider: Callable[
        [bytes, IntegrityConfig], IntegrityProvider | None
    ]
    #: Evaluation layer: extra cycles the counts cost under a latency
    #: configuration.
    price: Callable[[IntegrityEventCounts, LatencyParams], float]
    #: Timing layer: build the byte-free counter twin the trace pipeline
    #: drives, or ``None`` for providers that verify nothing.
    build_timing_model: Callable[
        [IntegrityConfig], IntegrityTimingModel
    ] | None = None

    def __post_init__(self) -> None:
        unknown = self.detects - ATTACK_KINDS
        if unknown:
            raise ConfigurationError(
                f"unknown attack kinds {sorted(unknown)} "
                f"(known: {sorted(ATTACK_KINDS)})"
            )

    @property
    def verifies(self) -> bool:
        """Whether the trace pipeline can simulate (and price) this spec."""
        return self.build_timing_model is not None


def hash_critical_cycles(counts: IntegrityEventCounts,
                         lat: LatencyParams) -> float:
    """The shared pricer: every critical-path hash costs one hash unit.

    Verification must complete before decrypted data is architecturally
    committed, so the hash walk of a *load* miss is serial exposure; the
    write side (updates, allocate fetches) hides in the store path."""
    return counts.critical_hashes * lat.hash_unit


_REGISTRY: dict[str, IntegritySpec] = {}


def register(spec: IntegritySpec) -> IntegritySpec:
    """Register a spec; returns it so modules can keep a handle."""
    if spec.key in _REGISTRY:
        raise ConfigurationError(
            f"integrity provider {spec.key!r} is already registered"
        )
    _REGISTRY[spec.key] = spec
    return spec


def get_integrity(key: str) -> IntegritySpec:
    """Look up one registered integrity spec by key."""
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown integrity provider {key!r} (registered: {known})"
        ) from None


def integrity_keys() -> tuple[str, ...]:
    """Every registered integrity key, in registration order."""
    return tuple(_REGISTRY)


def all_integrities() -> tuple[IntegritySpec, ...]:
    """Every registered spec, in registration order."""
    return tuple(_REGISTRY.values())


_INTEGRITY_MODULES: list[str] = []


def integrity_module_names() -> tuple[str, ...]:
    """Fully-qualified names of the discovered spec modules.

    The eval result cache fingerprints exactly these files (plus this
    one and ``providers``), so editing a provider or its timing twin
    invalidates the simulation results produced through it."""
    return tuple(_INTEGRITY_MODULES)


def _discover() -> None:
    """Import every spec module in this package so it self-registers.

    ``providers`` (the functional classes) and modules starting with
    ``_`` (like ``__main__``, the completeness check) are skipped — they
    are machinery, not spec declarations."""
    for info in sorted(pkgutil.iter_modules(__path__),
                       key=lambda info: info.name):
        if info.name.startswith("_") or info.name == "providers":
            continue
        name = f"{__name__}.{info.name}"
        importlib.import_module(name)
        _INTEGRITY_MODULES.append(name)


_discover()

__all__ = [
    "ATTACK_KINDS",
    "HashTreeIntegrity",
    "IntegrityConfig",
    "IntegrityEventCounts",
    "IntegrityProvider",
    "IntegritySpec",
    "IntegrityStats",
    "IntegrityTimingModel",
    "MACIntegrity",
    "all_integrities",
    "get_integrity",
    "hash_critical_cycles",
    "integrity_keys",
    "integrity_module_names",
    "register",
]

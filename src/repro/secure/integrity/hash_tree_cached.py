"""Integrity spec: the cached hash tree — Gassend et al.'s optimisation.

Same Merkle tree as ``hash_tree``, plus a trusted on-chip node cache:
verification stops at the first cached ancestor instead of walking to
the root, so hot subtrees verify in a hash or two.  This is the design
the paper actually points at for integrity (§2.2), and the
slowdown-vs-node-cache-size experiment table
(:func:`repro.eval.experiments.integrity_jobs`) measures the cache's
effect on our substrate.

The provider and the timing twin both come from ``hash_tree``; this spec
only turns the node cache on (``node_cache_entries`` from the
:class:`~repro.secure.integrity.IntegrityConfig`, with a sensible
default when the caller leaves it zero).
"""

from __future__ import annotations

from repro.secure.integrity import (
    IntegrityConfig,
    IntegrityProvider,
    IntegritySpec,
    hash_critical_cycles,
    register,
)
from repro.secure.integrity.hash_tree import HashTreeTimingModel
from repro.secure.integrity.providers import HashTreeIntegrity

#: Node-cache size when the config leaves ``node_cache_entries`` at 0
#: (a *cached* tree with no cache would silently be ``hash_tree``).
DEFAULT_NODE_CACHE_ENTRIES = 1024


def _entries(config: IntegrityConfig) -> int:
    return config.node_cache_entries or DEFAULT_NODE_CACHE_ENTRIES


def _build_provider(key: bytes,
                    config: IntegrityConfig) -> IntegrityProvider:
    return HashTreeIntegrity(
        base_addr=config.base_addr, n_lines=config.n_lines,
        line_bytes=config.line_bytes,
        node_cache_entries=_entries(config),
    )


def _build_timing_model(config: IntegrityConfig) -> HashTreeTimingModel:
    return HashTreeTimingModel(
        config, node_cache_entries=_entries(config),
        provider_key="hash_tree_cached",
    )


SPEC = register(IntegritySpec(
    key="hash_tree_cached",
    title="cached Merkle hash tree",
    summary="Gassend-style trusted node cache: verification stops at a "
            "cached ancestor",
    detects=frozenset({"spoof", "splice", "replay"}),
    build_provider=_build_provider,
    price=hash_critical_cycles,
    build_timing_model=_build_timing_model,
))

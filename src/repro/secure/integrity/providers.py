"""Functional memory-integrity providers — what the paper defers (§2.2).

The paper handles *privacy* and points at Gassend et al. (HPCA 2003) for
*integrity*; XOM's threat model names three active attacks:

* **spoofing** — the adversary fabricates a line;
* **splicing** — the adversary moves a valid ciphertext line to another
  address;
* **replay** — the adversary restores a stale (line, MAC) pair it recorded
  earlier.

Two byte-moving providers, both pluggable into any engine via the
``integrity`` constructor argument (the registry in
:mod:`repro.secure.integrity` wraps them in :class:`IntegritySpec`
declarations alongside their byte-free timing twins and cycle pricers):

* :class:`MACIntegrity` — a per-line keyed MAC bound to the line address.
  Catches spoofing and splicing; **intentionally defeated by replay**
  (the MAC travels with the line, so old-pair restoration verifies), which
  the attack tests demonstrate.
* :class:`HashTreeIntegrity` — a Merkle tree over the protected range with
  the root register inside the security boundary.  Catches all three.  A
  trusted on-chip node cache cuts verification work, modelling Gassend's
  cached-hash-tree optimisation; its effect is an ablation benchmark and
  the ``hash_tree_cached`` registry spec's whole reason to exist.

Both store their metadata in *untrusted* locations on purpose — attack code
must be able to tamper with it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.mac import constant_time_equal, hmac_sha256
from repro.crypto.sha import sha256
from repro.errors import ConfigurationError, ReplayDetected, TamperDetected
from repro.utils.intmath import is_power_of_two, log2_exact


@dataclass
class IntegrityStats:
    """What one provider did — the counters the timing twins must match.

    ``hashes_computed`` counts hash-unit operations (one HMAC or one
    SHA-256 node/leaf digest each); the randomized cross-check tests pin
    every field against the corresponding
    :class:`~repro.secure.integrity.IntegrityEventCounts` of the
    provider's byte-free timing model."""

    verifications: int = 0
    updates: int = 0
    hashes_computed: int = 0
    node_cache_hits: int = 0
    failures: int = 0


class MACIntegrity:
    """Per-line HMAC bound to the line's address.

    The tag table lives in untrusted memory (modelled as a plain dict the
    adversary may freely rewrite via :attr:`tag_table`).
    """

    def __init__(self, key: bytes, tag_bytes: int = 16):
        if not 4 <= tag_bytes <= 32:
            raise ConfigurationError("tag length must be 4..32 bytes")
        self._key = key
        self.tag_bytes = tag_bytes
        #: address -> tag; untrusted, exposed for adversary manipulation.
        self.tag_table: dict[int, bytes] = {}
        self.stats = IntegrityStats()

    def covers(self, line_addr: int) -> bool:
        """MAC protection is on-demand: any line may carry a tag."""
        return True

    def _tag(self, line_addr: int, ciphertext: bytes) -> bytes:
        self.stats.hashes_computed += 1
        message = line_addr.to_bytes(8, "big") + ciphertext
        return hmac_sha256(self._key, message)[: self.tag_bytes]

    def record_line(self, line_addr: int, ciphertext: bytes) -> None:
        self.stats.updates += 1
        self.tag_table[line_addr] = self._tag(line_addr, ciphertext)

    def verify_line(self, line_addr: int, ciphertext: bytes) -> None:
        self.stats.verifications += 1
        stored = self.tag_table.get(line_addr)
        if stored is None:
            return  # line never written under this provider (vendor image)
        if not constant_time_equal(stored, self._tag(line_addr, ciphertext)):
            self.stats.failures += 1
            raise TamperDetected(
                f"MAC mismatch on line {line_addr:#x}: spoofed or spliced"
            )


class HashTreeIntegrity:
    """A Merkle tree over a line-granular protected region.

    The root digest lives "on chip" (a private attribute attack code cannot
    plausibly deny knowing about, but the threat model only grants the
    adversary the *node store*, exposed via :attr:`node_store`).
    """

    def __init__(self, base_addr: int, n_lines: int, line_bytes: int = 128,
                 node_cache_entries: int = 0, memoize_paths: bool = True):
        if not is_power_of_two(n_lines):
            raise ConfigurationError("hash tree needs a power-of-two leaves")
        if base_addr % line_bytes:
            raise ConfigurationError("protected base must be line-aligned")
        self.base_addr = base_addr
        self.n_lines = n_lines
        self.line_bytes = line_bytes
        self.depth = log2_exact(n_lines)
        #: (level, index) -> digest; level 0 = leaves.  Untrusted.
        self.node_store: dict[tuple[int, int], bytes] = {}
        self._root = self._empty_digest(self.depth)
        self.stats = IntegrityStats()
        self._node_cache_entries = node_cache_entries
        self._node_cache: dict[tuple[int, int], bytes] = {}
        # The leaf-address -> ancestor-index arithmetic is pure (only the
        # geometry determines it), so the verify hot loop memoizes each
        # leaf's (index at level 0..depth-1) chain; the ablation bench
        # measures the effect, and ``memoize_paths=False`` is its control.
        self._memoize_paths = memoize_paths
        self._paths: dict[int, tuple[int, ...]] = {}

    # -- construction helpers -------------------------------------------------

    def _empty_digest(self, level: int) -> bytes:
        """Digest of an all-absent subtree at ``level`` (memoized ladder)."""
        digest = sha256(b"repro-hashtree-empty-leaf")
        for _ in range(level):
            digest = sha256(digest + digest)
        return digest

    def _leaf_digest(self, line_addr: int, ciphertext: bytes) -> bytes:
        self.stats.hashes_computed += 1
        return sha256(line_addr.to_bytes(8, "big") + ciphertext)

    def _node(self, level: int, index: int) -> bytes:
        return self.node_store.get((level, index), self._empty_digest(level))

    def covers(self, line_addr: int) -> bool:
        """Whether the line falls inside the protected region.

        Every covered line must be recorded when the program image is
        installed; a covered-but-unrecorded line fails verification by
        design (its leaf digest cannot match the empty-subtree ladder)."""
        end = self.base_addr + self.n_lines * self.line_bytes
        return self.base_addr <= line_addr < end

    def _leaf_index(self, line_addr: int) -> int:
        index = (line_addr - self.base_addr) // self.line_bytes
        if not 0 <= index < self.n_lines:
            raise ConfigurationError(
                f"line {line_addr:#x} outside the protected region"
            )
        return index

    def _path(self, line_addr: int) -> tuple[int, ...]:
        """The leaf's ancestor index at every level, leaf first.

        ``path[level]`` is the node index on the leaf-to-root walk at
        ``level``; the sibling is ``path[level] ^ 1``.  Memoized per leaf
        (see ``memoize_paths``)."""
        if self._memoize_paths:
            path = self._paths.get(line_addr)
            if path is not None:
                return path
        index = self._leaf_index(line_addr)
        chain = [index]
        for _ in range(self.depth):
            index //= 2
            chain.append(index)
        path = tuple(chain)
        if self._memoize_paths:
            self._paths[line_addr] = path
        return path

    # -- trusted node cache (the Gassend optimisation) ------------------------

    def _cache_lookup(self, level: int, index: int) -> bytes | None:
        digest = self._node_cache.get((level, index))
        if digest is not None:
            self.stats.node_cache_hits += 1
        return digest

    def _cache_store(self, level: int, index: int, digest: bytes) -> None:
        if self._node_cache_entries <= 0:
            return
        if len(self._node_cache) >= self._node_cache_entries:
            self._node_cache.pop(next(iter(self._node_cache)))
        self._node_cache[(level, index)] = digest

    # -- the provider interface -----------------------------------------------

    def record_line(self, line_addr: int, ciphertext: bytes) -> None:
        """Update the leaf and every ancestor up to the on-chip root."""
        self.stats.updates += 1
        path = self._path(line_addr)
        digest = self._leaf_digest(line_addr, ciphertext)
        self.node_store[(0, path[0])] = digest
        self._cache_store(0, path[0], digest)
        for level in range(self.depth):
            index = path[level]
            sibling = self._node(level, index ^ 1)
            left, right = (
                (digest, sibling) if index % 2 == 0 else (sibling, digest)
            )
            digest = sha256(left + right)
            self.stats.hashes_computed += 1
            self.node_store[(level + 1, path[level + 1])] = digest
            self._cache_store(level + 1, path[level + 1], digest)
        self._root = digest

    def verify_line(self, line_addr: int, ciphertext: bytes) -> None:
        """Recompute the path to the root (or to a trusted cached node)."""
        self.stats.verifications += 1
        path = self._path(line_addr)
        digest = self._leaf_digest(line_addr, ciphertext)
        for level in range(self.depth):
            index = path[level]
            trusted = self._cache_lookup(level, index)
            if trusted is not None:
                if constant_time_equal(trusted, digest):
                    return  # verified against a trusted on-chip ancestor
                self._fail(line_addr)
            sibling = self._node(level, index ^ 1)
            left, right = (
                (digest, sibling) if index % 2 == 0 else (sibling, digest)
            )
            digest = sha256(left + right)
            self.stats.hashes_computed += 1
        if not constant_time_equal(digest, self._root):
            self._fail(line_addr, replay=True)

    def _fail(self, line_addr: int, replay: bool = False) -> None:
        self.stats.failures += 1
        if replay:
            raise ReplayDetected(
                f"hash-tree root mismatch verifying line {line_addr:#x} — "
                "stale or tampered memory"
            )
        raise TamperDetected(
            f"hash-tree node mismatch verifying line {line_addr:#x}"
        )

"""Integrity spec: no verification — the paper's own configuration.

The paper accelerates *privacy* only and leaves integrity to future work
(§2.2), so ``none`` is the default everywhere: ``SecureProcessor`` builds
no provider, the trace pipeline builds no timing model, and pricing adds
zero cycles — which is exactly why the seven paper figure tables are
untouched by the integrity axis.
"""

from __future__ import annotations

from repro.secure.integrity import IntegritySpec, register

SPEC = register(IntegritySpec(
    key="none",
    title="no integrity",
    summary="privacy only, as in the paper: nothing verified, zero cost",
    detects=frozenset(),
    build_provider=lambda key, config: None,
    price=lambda counts, lat: 0.0,
    build_timing_model=None,
))

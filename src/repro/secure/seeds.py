"""Seed construction for one-time-pad encryption (paper §3.4).

A pad block must never repeat for two different plaintexts, so the seed must
be unique per **(line, version, chunk)**:

* *line* — the line's **virtual** address (physical addresses can change
  across context switches, §4); neighbouring lines get unrelated pads
  because the seed feeds a block cipher.
* *version* — the per-line **sequence number**, bumped on every writeback,
  so rewriting the same location never reuses a pad (the §3.4
  "disadvantage" fix).  Instructions are never written back, so their
  version is permanently 0 (§3.4.1) — which also makes the vendor's
  encryption of initialized data (version 0) decrypt correctly on first
  touch.
* *chunk* — the index of the cipher block within the line; the pad
  generator encrypts ``seed + j`` for chunk *j* (Algorithm 1), so chunk
  bits occupy the seed's low bits and must not carry into the version
  field.

Layout (for a 64-bit DES seed, the paper's configuration)::

    63                         20        4      0
    +--------------------------+---------+------+
    |       line index         | seqnum  | chunk|
    +--------------------------+---------+------+

With 128-byte lines a 48-bit VA leaves a 41-bit line index; 41 + 16 + 4
= 61 bits fits the 64-bit block.  AES's 128-bit blocks are roomier still.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.utils.intmath import log2_exact


@dataclass(frozen=True)
class SeedScheme:
    """Computes pad seeds from (virtual line address, sequence number)."""

    line_bytes: int = 128
    block_bytes: int = 8
    seq_bits: int = 16

    def __post_init__(self) -> None:
        if self.line_bytes % self.block_bytes:
            raise ConfigurationError(
                f"line size {self.line_bytes} must be a multiple of the "
                f"cipher block size {self.block_bytes}"
            )
        log2_exact(self.line_bytes)  # validates power of two
        log2_exact(self.block_bytes)
        if self.seq_bits <= 0:
            raise ConfigurationError("seq_bits must be positive")

    @property
    def chunks_per_line(self) -> int:
        return self.line_bytes // self.block_bytes

    @property
    def chunk_bits(self) -> int:
        return log2_exact(self.chunks_per_line)

    @property
    def max_seq(self) -> int:
        return (1 << self.seq_bits) - 1

    def line_index(self, line_va: int) -> int:
        if line_va % self.line_bytes:
            raise ConfigurationError(
                f"address {line_va:#x} is not line-aligned"
            )
        return line_va // self.line_bytes

    def data_seed(self, line_va: int, seq: int) -> int:
        """Seed for chunk 0 of a data line at version ``seq``."""
        if not 0 <= seq <= self.max_seq:
            raise ConfigurationError(
                f"sequence number {seq} outside {self.seq_bits}-bit range"
            )
        index = self.line_index(line_va)
        return ((index << self.seq_bits) | seq) << self.chunk_bits

    def instruction_seed(self, line_va: int) -> int:
        """Seed for an instruction line: the vendor's VA-derived constant."""
        return self.data_seed(line_va, 0)

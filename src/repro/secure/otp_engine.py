"""The one-time-pad memory encryption engine — the paper's contribution.

Read path (L2 read miss, §4.2):

* **SNC query hit** — the seed is on chip, pad generation overlaps the DRAM
  access: ``MAX(memory, crypto) + 1`` cycles.
* **SNC query miss, LRU** — the spilled sequence number is fetched from the
  encrypted in-memory table and decrypted (memory + crypto) before pad
  generation can start: the most expensive operation (Algorithm 1, lines
  1-12).
* **SNC query miss, no-replacement** — the line was encrypted directly when
  it went out, so it takes the XOM serial path coming back.
* **Instruction lines** — seed is the virtual address (§3.4.1), always
  overlapped, never in the SNC.
* **Plaintext regions** (§4.3) — shared libraries and program inputs cross
  the bus in the clear at plain memory latency.

Write path (L2 dirty eviction): bump the line's sequence number, build the
pad with the *new* seed, XOR, send — all in the write buffer, off the
critical path.  An update miss costs an extra seqnum-table round trip
(traffic, not stall).

The query/update decision procedure itself lives in
:class:`~repro.secure.snc_policy.SNCPolicyCore` — one state machine shared
with the byte-free timing simulator, so the two layers cannot drift.  This
engine contributes what the core abstracts away: the actual cryptography,
the encrypted sequence-number table in untrusted memory, and the bus
traffic.  Scheme variants (e.g. ``otp_split``) swap in a different core
via ``core_factory`` without touching this file.

The sequence-number table in untrusted memory stores, per line, the block
``E_K(line_index || seq)`` — encrypted *directly*, not with a pad ("it is
not preferred that the sequence numbers are encrypted using one-time pad
again since they themselves would need sequence numbers", §4.1).  Binding
the line index into the plaintext makes a spliced table entry detectable on
decrypt, which the attack tests exercise.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.crypto.blockcipher import BlockCipher
from repro.crypto.modes import ecb_decrypt, ecb_encrypt, otp_transform
from repro.errors import ConfigurationError, TamperDetected
from repro.memory.bus import MemoryBus, TransactionKind
from repro.memory.dram import DRAM
from repro.memory.hierarchy import LineKind
from repro.secure.engine import EngineStats, LatencyParams
from repro.secure.integrity import IntegrityProvider
from repro.secure.regions import RegionMap
from repro.secure.seeds import SeedScheme
from repro.secure.snc import Evicted, SequenceNumberCache, SNCPolicy
from repro.secure.snc_policy import ReadClass, SNCPolicyCore, WriteClass

#: Default base of the sequence-number spill table: far above any program
#: segment, still inside the sparse DRAM model's address space.
SEQNUM_TABLE_BASE = 1 << 44

#: Builds the policy state machine the engine consults; the default is the
#: paper's Algorithm 1, variants come from scheme spec files.
CoreFactory = Callable[..., SNCPolicyCore]


class OTPEngine:
    """One-time-pad line encryption with a Sequence Number Cache."""

    def __init__(self, dram: DRAM, cipher: BlockCipher,
                 snc: SequenceNumberCache | None = None,
                 seed_scheme: SeedScheme | None = None,
                 bus: MemoryBus | None = None,
                 latencies: LatencyParams | None = None,
                 regions: RegionMap | None = None,
                 integrity: IntegrityProvider | None = None,
                 table_base: int = SEQNUM_TABLE_BASE,
                 xom_id: int = 0,
                 core_factory: CoreFactory | None = None):
        self.dram = dram
        self.cipher = cipher
        # Explicit None checks: these objects define __len__, so an empty
        # (but caller-owned) instance is falsy and `or` would discard it.
        self.snc = snc if snc is not None else SequenceNumberCache()
        self.seed_scheme = seed_scheme or SeedScheme(
            line_bytes=dram.line_bytes, block_bytes=cipher.block_size
        )
        if self.seed_scheme.line_bytes != dram.line_bytes:
            raise ConfigurationError(
                "seed scheme line size disagrees with DRAM line size"
            )
        self.bus = bus or MemoryBus()
        self.latencies = latencies or LatencyParams(memory=dram.latency)
        self.regions = regions if regions is not None else RegionMap()
        self.integrity = integrity
        self.table_base = table_base
        self.xom_id = xom_id
        self.stats = EngineStats()
        factory = core_factory or SNCPolicyCore
        self.core = factory(
            self.snc, xom_id=xom_id,
            fetch_entry=self._fetch_table_entry,
            spill_entry=self._spill_victim,
        )

    # ------------------------------------------------------------------ reads

    def read_line(self, line_addr: int, kind: LineKind) -> tuple[bytes, int]:
        raw = self.dram.read_line(line_addr)
        transaction = (
            TransactionKind.INSTRUCTION_READ
            if kind is LineKind.INSTRUCTION
            else TransactionKind.DATA_READ
        )
        self.bus.record(transaction, line_addr, raw)
        if kind is LineKind.INSTRUCTION:
            self.stats.instruction_reads += 1
        else:
            self.stats.data_reads += 1

        if self.regions.is_plaintext(line_addr):
            self.stats.plaintext_reads += 1
            return raw, self.stats.charge(self.latencies.baseline_read)
        if self.integrity is not None and self.integrity.covers(line_addr):
            self.integrity.verify_line(line_addr, raw)

        if kind is LineKind.INSTRUCTION:
            seed = self.seed_scheme.instruction_seed(line_addr)
            self.stats.overlapped_reads += 1
            return (
                otp_transform(self.cipher, seed, raw),
                self.stats.charge(self.latencies.overlapped_read),
            )

        line_index = self.seed_scheme.line_index(line_addr)
        decision = self.core.read(line_index)
        if decision.kind is ReadClass.DIRECT:
            self.stats.serial_reads += 1
            return (
                ecb_decrypt(self.cipher, raw),
                self.stats.charge(self.latencies.serial_read),
            )
        seed = self.seed_scheme.data_seed(line_addr, decision.seq)
        if decision.kind is ReadClass.OVERLAPPED:
            self.stats.overlapped_reads += 1
            cycles = self.stats.charge(self.latencies.overlapped_read)
        else:  # ReadClass.SEQNUM_MISS: the table fetch already happened.
            self.stats.seqnum_miss_reads += 1
            cycles = self.stats.charge(self.latencies.seqnum_miss_read)
        return otp_transform(self.cipher, seed, raw), cycles

    # ----------------------------------------------------------------- writes

    def write_line(self, line_addr: int, plaintext: bytes) -> int:
        self.stats.writes += 1
        if self.regions.is_plaintext(line_addr):
            self.bus.record(TransactionKind.DATA_WRITE, line_addr, plaintext)
            self.dram.write_line(line_addr, plaintext)
            return 0

        line_index = self.seed_scheme.line_index(line_addr)
        decision = self.core.write(line_index)
        if decision.kind is WriteClass.REJECTED:
            # Direct-encryption fallback (no-replacement SNC full, or a
            # variant scheme retiring the line from pad treatment).
            ciphertext = ecb_encrypt(self.cipher, plaintext)
        else:
            seq = self._wrap_seq(line_index, decision.seq)
            seed = self.seed_scheme.data_seed(line_addr, seq)
            ciphertext = otp_transform(self.cipher, seed, plaintext)
        if self.integrity is not None and self.integrity.covers(line_addr):
            self.integrity.record_line(line_addr, ciphertext)
        self.bus.record(TransactionKind.DATA_WRITE, line_addr, ciphertext)
        self.dram.write_line(line_addr, ciphertext)
        return 0  # encryption happens in the write buffer, off critical path

    def _wrap_seq(self, line_index: int, seq: int) -> int:
        """A sequence number overflowing its field would force a re-keying
        epoch in real hardware; we count the event and wrap (documented
        simulation concession — none of the shipped experiments overflow)."""
        if seq > self.seed_scheme.max_seq:
            self.stats.seq_overflows += 1
            seq &= self.seed_scheme.max_seq
            self.snc.set_seq(line_index, seq, self.xom_id)
        return seq

    # ----------------------------------------- sequence-number table plumbing

    def _table_addr(self, line_index: int) -> int:
        return self.table_base + line_index * self.cipher.block_size

    def _table_tweak(self) -> int:
        """Domain separation between table-entry encryption and pad
        generation: table plaintexts carry a high tweak bit that no pad
        counter can reach (pad seeds top out at line-index bit 61), so the
        two uses of the cipher can never process the same block."""
        return 1 << (8 * self.cipher.block_size - 2)

    def _spill_victim(self, victim: Evicted) -> None:
        """The core's spill callback: persist one evicted entry."""
        self._spill_table_entry(victim.line_index, victim.seq)

    def _spill_table_entry(self, line_index: int, seq: int) -> None:
        """Encrypt-and-store one evicted sequence number (bus traffic)."""
        plaintext_block = (
            self._table_tweak()
            | (line_index << self.seed_scheme.seq_bits)
            | seq
        ).to_bytes(self.cipher.block_size, "big")
        ciphertext = self.cipher.encrypt_block(plaintext_block)
        addr = self._table_addr(line_index)
        self.bus.record(TransactionKind.SEQNUM_WRITE, addr, ciphertext)
        self.dram.poke(addr, ciphertext)

    def _fetch_table_entry(self, line_index: int) -> int:
        """Fetch-and-decrypt one spilled sequence number (bus traffic).

        Lines never spilled read back as version 0 — the vendor-image
        encryption — via an all-zero table slot sentinel."""
        addr = self._table_addr(line_index)
        raw = self.dram.peek(addr, self.cipher.block_size)
        self.bus.record(TransactionKind.SEQNUM_READ, addr, raw)
        if raw == bytes(self.cipher.block_size):
            return 0
        block = self.cipher.decrypt_block(raw)
        value = int.from_bytes(block, "big")
        if not value & self._table_tweak():
            raise TamperDetected(
                f"sequence-number table entry for line {line_index:#x} "
                "lacks the table domain tag — forged table entry?"
            )
        value &= ~self._table_tweak()
        seq = value & self.seed_scheme.max_seq
        stored_index = value >> self.seed_scheme.seq_bits
        if stored_index != line_index:
            raise TamperDetected(
                f"sequence-number table entry for line {line_index:#x} "
                f"decrypts to line {stored_index:#x} — spliced table?"
            )
        return seq

    # -------------------------------------------------- context switch (§4.3)

    def flush_snc(self) -> int:
        """Strategy 1: encrypt-and-spill the whole SNC (context switch out).

        Returns the number of entries spilled (each one is a memory write).
        Only meaningful under LRU — no-replacement has no spill table."""
        if self.snc.config.policy is not SNCPolicy.LRU:
            raise ConfigurationError(
                "flush_snc requires the LRU (spilling) policy"
            )
        spilled = self.snc.flush()
        for entry in spilled:
            self._spill_table_entry(entry.line_index, entry.seq)
        return len(spilled)

"""The paper's contribution: one-time-pad memory encryption with an SNC,
plus the XOM baseline it improves on and the surrounding machinery
(compartments, vendor packaging, integrity, context switching).
"""

from repro.secure.compartment import (
    SHARED_ID,
    Compartment,
    CompartmentManager,
    InterruptFrame,
    TaggedRegisterFile,
)
from repro.secure.context import (
    SwitchStrategy,
    TaskContexts,
)
from repro.secure.engine import BaselineEngine, EngineStats, LatencyParams
from repro.secure.integrity import (
    HashTreeIntegrity,
    IntegrityConfig,
    IntegrityEventCounts,
    IntegrityProvider,
    IntegritySpec,
    IntegrityStats,
    MACIntegrity,
    all_integrities,
    get_integrity,
    integrity_keys,
    register as register_integrity,
)
from repro.secure.otp_engine import SEQNUM_TABLE_BASE, OTPEngine
from repro.secure.regions import Region, RegionMap
from repro.secure.seeds import SeedScheme
from repro.secure.snc import (
    Evicted,
    SequenceNumberCache,
    SNCConfig,
    SNCPolicy,
    SNCStats,
)
from repro.secure.snc_policy import (
    ReadClass,
    ReadDecision,
    SNCPolicyCore,
    WriteClass,
    WriteDecision,
)
from repro.secure.schemes import (
    EngineContext,
    SchemeSpec,
    all_schemes,
    get_scheme,
    register as register_scheme,
    scheme_keys,
)
from repro.secure.processor import EngineKind, RunReport, SecureProcessor
from repro.secure.software import (
    PlainProgram,
    ProtectionScheme,
    SecureProgram,
    Segment,
    SegmentKind,
    install_image,
    package_program,
    unwrap_program_key,
)
from repro.secure.xom_engine import XOMEngine

__all__ = [
    "BaselineEngine",
    "Compartment",
    "CompartmentManager",
    "EngineContext",
    "EngineKind",
    "ProtectionScheme",
    "ReadClass",
    "ReadDecision",
    "RunReport",
    "SNCPolicyCore",
    "SchemeSpec",
    "SecureProcessor",
    "EngineStats",
    "Evicted",
    "HashTreeIntegrity",
    "IntegrityConfig",
    "IntegrityEventCounts",
    "IntegrityProvider",
    "IntegritySpec",
    "IntegrityStats",
    "InterruptFrame",
    "LatencyParams",
    "MACIntegrity",
    "OTPEngine",
    "PlainProgram",
    "Region",
    "RegionMap",
    "SEQNUM_TABLE_BASE",
    "SHARED_ID",
    "SNCConfig",
    "SNCPolicy",
    "SNCStats",
    "SecureProgram",
    "SeedScheme",
    "Segment",
    "SegmentKind",
    "SequenceNumberCache",
    "SwitchStrategy",
    "TaggedRegisterFile",
    "TaskContexts",
    "WriteClass",
    "WriteDecision",
    "XOMEngine",
    "all_integrities",
    "all_schemes",
    "get_integrity",
    "get_scheme",
    "install_image",
    "integrity_keys",
    "package_program",
    "register_integrity",
    "register_scheme",
    "scheme_keys",
    "unwrap_program_key",
]

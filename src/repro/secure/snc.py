"""The Sequence Number Cache (SNC) — the paper's key hardware structure (§4).

An on-chip cache, inside the security boundary, that maps a line's
**virtual** address to its current sequence number.  It sits below L2 and
watches the L2<->memory traffic:

* **query** (L2 read miss): is the target line's sequence number on chip?
  A hit means pad generation can start immediately, fully overlapped with
  the DRAM access.  A miss is policy-dependent (see below).
* **update** (L2 writeback): bump the line's sequence number and use the
  new value to encrypt the outgoing line.

Two operating policies (§4.1):

* :attr:`SNCPolicy.LRU` — every line conceptually has a sequence number;
  those that don't fit on chip spill to an encrypted table in untrusted
  memory.  A query miss must fetch + decrypt the spilled number before pad
  generation can start — the most expensive operation in the design.
* :attr:`SNCPolicy.NO_REPLACEMENT` — once full, additional lines simply
  don't get one-time-pad treatment and fall back to XOM-style direct
  encryption.  Simple, but Figure 5/10 show LRU clearly wins.

Entries can optionally be tagged with a XOM (compartment) ID so that
multiple protected tasks can share the SNC across context switches — one of
the two §4.3 strategies, measured by the context-switch ablation bench.

This class is a pure data structure: *it performs no memory accesses*.
The engines orchestrate spills/fills and charge latencies; the evaluation
harness drives the same structure with line indices only.  One structure,
two layers — keeps the functional and timing paths provably consistent.

Each set is an ``OrderedDict`` keyed by (line, xom_id) in recency order,
so every operation is O(1) even for the paper's fully associative 32K-entry
configuration (the evaluation pushes millions of operations through this).
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import NamedTuple

from repro.errors import ConfigurationError
from repro.utils.intmath import is_power_of_two


class SNCPolicy(enum.Enum):
    """What to do when the SNC is full (paper §4.1)."""

    LRU = "lru"
    NO_REPLACEMENT = "no-replacement"


@dataclass
class SNCStats:
    """Event counters; the timing model prices these."""

    query_hits: int = 0
    query_misses: int = 0
    update_hits: int = 0
    update_misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejected: int = 0  # no-replacement policy, cache full

    @property
    def queries(self) -> int:
        return self.query_hits + self.query_misses

    @property
    def updates(self) -> int:
        return self.update_hits + self.update_misses

    @property
    def query_hit_rate(self) -> float:
        return self.query_hits / self.queries if self.queries else 0.0


@dataclass(frozen=True)
class SNCConfig:
    """Geometry: the paper's default is 64KB of 2-byte entries, fully
    associative (Figure 5), with 32-way set-associative as the practical
    variant (Figure 7)."""

    size_bytes: int = 64 * 1024
    entry_bytes: int = 2
    assoc: int | None = None  # None = fully associative
    policy: SNCPolicy = SNCPolicy.LRU

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.entry_bytes <= 0:
            raise ConfigurationError("SNC sizes must be positive")
        if self.size_bytes % self.entry_bytes:
            raise ConfigurationError("SNC size must be whole entries")
        entries = self.n_entries
        if not is_power_of_two(entries):
            raise ConfigurationError(
                f"SNC entry count {entries} must be a power of two"
            )
        if self.assoc is not None:
            if self.assoc <= 0 or entries % self.assoc:
                raise ConfigurationError(
                    f"associativity {self.assoc} must divide {entries}"
                )

    @property
    def n_entries(self) -> int:
        return self.size_bytes // self.entry_bytes

    @property
    def n_sets(self) -> int:
        return 1 if self.assoc is None else self.n_entries // self.assoc

    @property
    def ways(self) -> int:
        return self.n_entries if self.assoc is None else self.assoc

    @property
    def coverage_bytes(self) -> int:
        """Memory covered with one-time-pad treatment, given 128B lines."""
        return self.n_entries * 128


class Evicted(NamedTuple):
    """A spilled entry the engine must write to the in-memory table.

    A named tuple, not a dataclass: one is allocated per SNC eviction in
    the evaluation hot loops, and tuple construction is measurably
    cheaper there while keeping the same field API."""

    line_index: int
    seq: int
    xom_id: int = 0


class SequenceNumberCache:
    """Set-associative (or fully associative) LRU store of sequence numbers."""

    def __init__(self, config: SNCConfig | None = None):
        self.config = config or SNCConfig()
        self.stats = SNCStats()
        # (line_index, xom_id) -> seq, in LRU->MRU order per set.
        self._sets: list[OrderedDict[tuple[int, int], int]] = [
            OrderedDict() for _ in range(self.config.n_sets)
        ]
        self._n_sets = self.config.n_sets
        self._ways = self.config.ways

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._sets)

    @property
    def is_full(self) -> bool:
        return len(self) >= self.config.n_entries

    def _set_for(self, line_index: int) -> OrderedDict:
        if self._n_sets == 1:
            return self._sets[0]
        return self._sets[line_index % self._n_sets]

    # -- the two operations the paper defines (§4.2) -------------------------

    def query(self, line_index: int, xom_id: int = 0) -> int | None:
        """L2 read miss: return the line's sequence number, or None.

        A ``None`` means a *query miss*: under LRU the engine must fetch the
        spilled number from memory (then :meth:`insert` it); under
        no-replacement it means the line was directly encrypted.
        """
        entries = self._set_for(line_index)
        key = (line_index, xom_id)
        seq = entries.get(key)
        if seq is None:
            self.stats.query_misses += 1
            return None
        self.stats.query_hits += 1
        entries.move_to_end(key)
        return seq

    def update(self, line_index: int, xom_id: int = 0) -> int | None:
        """L2 writeback: bump and return the line's new sequence number.

        Returns ``None`` on an *update miss* — the number is not resident.
        The engine then either fetches-and-:meth:`insert`s it (LRU) or gives
        up and encrypts directly (no-replacement, full).
        """
        entries = self._set_for(line_index)
        key = (line_index, xom_id)
        seq = entries.get(key)
        if seq is None:
            self.stats.update_misses += 1
            return None
        self.stats.update_hits += 1
        seq += 1
        entries[key] = seq
        entries.move_to_end(key)
        return seq

    def insert(self, line_index: int, seq: int, xom_id: int = 0
               ) -> Evicted | None:
        """Install a sequence number fetched from memory (or a fresh one).

        Returns the evicted victim that must be spilled, or None.  Under
        :attr:`SNCPolicy.NO_REPLACEMENT` a full set rejects the insert by
        raising ``ConfigurationError`` — callers must check
        :meth:`can_insert` first (mirrors hardware where the fill simply
        doesn't happen).
        """
        entries = self._set_for(line_index)
        key = (line_index, xom_id)
        if key in entries:
            # Refresh in place (e.g. re-fetch raced with an earlier insert).
            entries[key] = seq
            entries.move_to_end(key)
            return None
        victim = None
        if len(entries) >= self._ways:
            if self.config.policy is SNCPolicy.NO_REPLACEMENT:
                raise ConfigurationError(
                    "insert into a full no-replacement SNC; "
                    "call can_insert() first"
                )
            (old_line, old_xom), old_seq = entries.popitem(last=False)
            self.stats.evictions += 1
            victim = Evicted(old_line, old_seq, old_xom)
        entries[key] = seq
        self.stats.insertions += 1
        return victim

    def can_insert(self, line_index: int) -> bool:
        """Whether an insert would succeed without violating the policy."""
        if self.config.policy is SNCPolicy.LRU:
            return True
        return len(self._set_for(line_index)) < self._ways

    def note_rejection(self) -> None:
        """Record that a line had to fall back to direct encryption."""
        self.stats.rejected += 1

    def set_seq(self, line_index: int, seq: int, xom_id: int = 0) -> None:
        """Overwrite a resident entry's value (epoch wrap handling)."""
        entries = self._set_for(line_index)
        key = (line_index, xom_id)
        if key in entries:
            entries[key] = seq

    def remove(self, line_index: int, xom_id: int = 0) -> int | None:
        """Drop one entry without spilling it; returns its sequence number.

        Used by schemes that retire a line from one-time-pad treatment
        (e.g. a split-counter overflow falling back to direct encryption):
        the entry must not linger, or a later query would hit a stale pad
        version for a line that is no longer pad-encrypted.
        """
        return self._set_for(line_index).pop((line_index, xom_id), None)

    # -- context-switch support (§4.3) ---------------------------------------

    def flush(self) -> list[Evicted]:
        """Strategy 1: spill everything and clear (flush-with-encryption)."""
        spilled = [
            Evicted(line, seq, xom)
            for entries in self._sets
            for (line, xom), seq in entries.items()
        ]
        for entries in self._sets:
            entries.clear()
        return spilled

    def drop_task(self, xom_id: int) -> list[Evicted]:
        """Spill only one task's entries (targeted flush)."""
        spilled = []
        for entries in self._sets:
            doomed = [key for key in entries if key[1] == xom_id]
            for key in doomed:
                spilled.append(Evicted(key[0], entries.pop(key), key[1]))
        return spilled

    def peek(self, line_index: int, xom_id: int = 0) -> int | None:
        """Read a sequence number without LRU/stats effects (tests, tools)."""
        return self._set_for(line_index).get((line_index, xom_id))

"""Memory-encryption engine base: latency parameters, stats, baseline.

An *engine* owns everything below L2: it talks to the bus/DRAM, performs
whatever cryptography its security model requires, and reports how many
cycles each read exposed on the critical path.  Three implementations:

* :class:`BaselineEngine` (here) — the insecure processor: lines cross the
  bus in plaintext, a read costs exactly the memory latency.
* :class:`~repro.secure.xom_engine.XOMEngine` — direct encryption on the
  memory path: every read costs ``memory + crypto`` (paper §2.2/Figure 2).
* :class:`~repro.secure.otp_engine.OTPEngine` — the paper's contribution:
  pad generation overlaps the DRAM access (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.memory.bus import MemoryBus, TransactionKind
from repro.memory.dram import DRAM
from repro.memory.hierarchy import LineKind


@dataclass(frozen=True)
class LatencyParams:
    """The cycle costs the paper composes (§3.2, §5).

    ``memory`` is a full DRAM round trip (100 in the paper); ``crypto`` is
    one fully-pipelined line encryption/decryption (50 for the DES ASIC
    assumption, 102 for the Figure 10 stronger-cipher variant); ``xor`` is
    the single pad-application cycle.  ``hash_unit`` is one hash-unit
    operation of the integrity extension (an HMAC or one SHA-256 tree
    node) — the paper defers integrity to Gassend et al. (§2.2), so this
    knob prices the deferred piece; 80 cycles is a 2003-era SHA-256 ASIC
    assumption between the DES and stronger-cipher figures.
    """

    memory: int = 100
    crypto: int = 50
    xor: int = 1
    hash_unit: int = 80

    def __post_init__(self) -> None:
        if min(self.memory, self.crypto, self.xor, self.hash_unit) < 0:
            raise ConfigurationError("latencies must be non-negative")

    # The four read-path costs of the design space.  Keeping the formulas
    # here, named, means the functional engines and the trace-driven timing
    # model can not drift apart.

    @property
    def baseline_read(self) -> int:
        """Insecure read: just the memory."""
        return self.memory

    @property
    def serial_read(self) -> int:
        """XOM read: decrypt after fetch (also: OTP no-repl fallback)."""
        return self.memory + self.crypto

    @property
    def overlapped_read(self) -> int:
        """OTP read with the seed on chip: MAX(memory, crypto) + 1 (§3.2)."""
        return max(self.memory, self.crypto) + self.xor

    @property
    def seqnum_spill(self) -> int:
        """Throughput cost of encrypt-and-spilling one SNC entry during a
        §4.3 FLUSH context switch.  The spills are bulk work, not a
        critical-path stall: the crypto unit is fully pipelined (one
        table block per cycle once primed) and the stores stream through
        the write buffer, so each entry exposes one pipelined crypto slot
        plus one store slot."""
        return self.xor + 1

    @property
    def seqnum_miss_read(self) -> int:
        """OTP read with an SNC query miss (LRU): fetch + decrypt the spilled
        sequence number (memory + crypto, "150 cycles before the seed
        encryption can start", §4.2), then one more crypto for pad
        generation — the line fetch itself, issued in parallel, is already
        complete by then — plus the XOR."""
        return self.memory + self.crypto + self.crypto + self.xor


@dataclass
class EngineStats:
    """Read/write event counts with their exposed critical-path cycles."""

    instruction_reads: int = 0
    data_reads: int = 0
    plaintext_reads: int = 0
    writes: int = 0
    overlapped_reads: int = 0  # OTP fast path
    serial_reads: int = 0  # XOM path or direct-encryption fallback
    seqnum_miss_reads: int = 0  # LRU query misses
    seq_overflows: int = 0
    critical_cycles: int = 0

    def charge(self, cycles: int) -> int:
        self.critical_cycles += cycles
        return cycles


class BaselineEngine:
    """The insecure processor: plaintext on the bus, memory latency only."""

    def __init__(self, dram: DRAM, bus: MemoryBus | None = None,
                 latencies: LatencyParams | None = None):
        self.dram = dram
        self.bus = bus or MemoryBus()
        self.latencies = latencies or LatencyParams(memory=dram.latency)
        self.stats = EngineStats()

    def read_line(self, line_addr: int, kind: LineKind) -> tuple[bytes, int]:
        data = self.dram.read_line(line_addr)
        if kind is LineKind.INSTRUCTION:
            self.stats.instruction_reads += 1
            self.bus.record(TransactionKind.INSTRUCTION_READ, line_addr, data)
        else:
            self.stats.data_reads += 1
            self.bus.record(TransactionKind.DATA_READ, line_addr, data)
        return data, self.stats.charge(self.latencies.baseline_read)

    def write_line(self, line_addr: int, plaintext: bytes) -> int:
        self.stats.writes += 1
        self.bus.record(TransactionKind.DATA_WRITE, line_addr, plaintext)
        self.dram.write_line(line_addr, plaintext)
        return 0

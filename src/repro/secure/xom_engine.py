"""The XOM-style engine: direct encryption on the memory path (§2.2).

This is the baseline the paper improves on.  Every line that leaves the
chip is encrypted with the program key, block by block (ECB — "every data
value is encrypted directly and stored in its memory location", §3.4);
every line read back is decrypted *after* it arrives, so a read costs
``memory + crypto`` serially — the lengthened path of Figure 2.

The §3.4 "Advantage" discussion points out the consequence this repo's
:mod:`repro.attacks.pattern` demonstrates: equal plaintext lines produce
equal ciphertext lines, preserving memory's abundant value repetition.
"""

from __future__ import annotations

from repro.crypto.blockcipher import BlockCipher
from repro.crypto.modes import ecb_decrypt, ecb_encrypt
from repro.memory.bus import MemoryBus, TransactionKind
from repro.memory.dram import DRAM
from repro.memory.hierarchy import LineKind
from repro.secure.engine import EngineStats, LatencyParams
from repro.secure.integrity import IntegrityProvider
from repro.secure.regions import RegionMap


class XOMEngine:
    """Decrypt-after-fetch / encrypt-before-store, per L2 line."""

    def __init__(self, dram: DRAM, cipher: BlockCipher,
                 bus: MemoryBus | None = None,
                 latencies: LatencyParams | None = None,
                 regions: RegionMap | None = None,
                 integrity: IntegrityProvider | None = None):
        self.dram = dram
        self.cipher = cipher
        self.bus = bus or MemoryBus()
        self.latencies = latencies or LatencyParams(memory=dram.latency)
        # RegionMap defines __len__: an empty caller-owned map is falsy,
        # so `or` would wrongly discard it.
        self.regions = regions if regions is not None else RegionMap()
        self.integrity = integrity
        self.stats = EngineStats()

    def read_line(self, line_addr: int, kind: LineKind) -> tuple[bytes, int]:
        raw = self.dram.read_line(line_addr)
        transaction = (
            TransactionKind.INSTRUCTION_READ
            if kind is LineKind.INSTRUCTION
            else TransactionKind.DATA_READ
        )
        self.bus.record(transaction, line_addr, raw)
        if kind is LineKind.INSTRUCTION:
            self.stats.instruction_reads += 1
        else:
            self.stats.data_reads += 1
        if self.regions.is_plaintext(line_addr):
            self.stats.plaintext_reads += 1
            return raw, self.stats.charge(self.latencies.baseline_read)
        if self.integrity is not None and self.integrity.covers(line_addr):
            self.integrity.verify_line(line_addr, raw)
        plaintext = ecb_decrypt(self.cipher, raw)
        self.stats.serial_reads += 1
        return plaintext, self.stats.charge(self.latencies.serial_read)

    def write_line(self, line_addr: int, plaintext: bytes) -> int:
        self.stats.writes += 1
        if self.regions.is_plaintext(line_addr):
            self.bus.record(TransactionKind.DATA_WRITE, line_addr, plaintext)
            self.dram.write_line(line_addr, plaintext)
            return 0
        ciphertext = ecb_encrypt(self.cipher, plaintext)
        if self.integrity is not None and self.integrity.covers(line_addr):
            self.integrity.record_line(line_addr, ciphertext)
        self.bus.record(TransactionKind.DATA_WRITE, line_addr, ciphertext)
        self.dram.write_line(line_addr, ciphertext)
        # Encryption happens in the write buffer, off the critical path.
        return 0

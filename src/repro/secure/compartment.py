"""XOM compartments: per-task isolation inside the chip (paper §2.3).

Each protected task runs in a *compartment* with its own ID and symmetric
key.  The ID tags every register and cache line the task produces, so even
a malicious operating system — which by assumption can run privileged code
and take interrupts at will — can never observe or forge another task's
on-chip state:

* reading a register tagged with a foreign ID raises a trap
  (:class:`~repro.errors.CompartmentViolation`);
* on an interrupt, the hardware encrypts the task's registers with a
  **mutating** counter folded into the pad seed (§3.4 recalls this XOM
  mechanism: a fresh value per interrupt event, so identical register
  files never produce identical ciphertext);
* restore verifies the frame belongs to the resuming compartment and that
  the counter matches, so the OS cannot replay a stale frame.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.blockcipher import BlockCipher
from repro.crypto.mac import constant_time_equal, hmac_sha256
from repro.crypto.otp import pad_for_seed
from repro.errors import CompartmentViolation, ConfigurationError
from repro.utils.bitops import xor_bytes

#: The "null" compartment: untagged state, readable by anyone (XOM's
#: shared/untrusted world, where the OS lives).
SHARED_ID = 0


@dataclass
class Compartment:
    """One protected task's identity and key material."""

    xom_id: int
    cipher: BlockCipher
    interrupt_counter: int = 0


class CompartmentManager:
    """Allocates compartment IDs and tracks which one is executing."""

    def __init__(self) -> None:
        self._compartments: dict[int, Compartment] = {}
        self._next_id = 1
        self.active_id = SHARED_ID

    def create(self, cipher: BlockCipher) -> Compartment:
        compartment = Compartment(self._next_id, cipher)
        self._compartments[self._next_id] = compartment
        self._next_id += 1
        return compartment

    def get(self, xom_id: int) -> Compartment:
        try:
            return self._compartments[xom_id]
        except KeyError:
            raise ConfigurationError(f"unknown compartment {xom_id}") from None

    def enter(self, xom_id: int) -> None:
        """Enter XOM mode for a task (the enter_xom instruction)."""
        if xom_id != SHARED_ID:
            self.get(xom_id)  # validates existence
        self.active_id = xom_id

    def exit(self) -> None:
        """Leave XOM mode (back to the shared/null compartment)."""
        self.active_id = SHARED_ID


@dataclass
class _TaggedValue:
    value: int = 0
    owner: int = SHARED_ID


@dataclass(frozen=True)
class InterruptFrame:
    """An encrypted register file as handed to the (untrusted) OS."""

    xom_id: int
    counter: int
    ciphertext: bytes
    tag: bytes


class TaggedRegisterFile:
    """A register file whose entries carry compartment ownership tags."""

    def __init__(self, manager: CompartmentManager, n_registers: int = 32,
                 register_bytes: int = 4):
        self.manager = manager
        self.n_registers = n_registers
        self.register_bytes = register_bytes
        self._registers = [_TaggedValue() for _ in range(n_registers)]

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n_registers:
            raise ConfigurationError(f"register index {index} out of range")

    def read(self, index: int) -> int:
        """Read a register; foreign-owned data traps (§2.3 tagging)."""
        self._check_index(index)
        entry = self._registers[index]
        active = self.manager.active_id
        if entry.owner not in (SHARED_ID, active):
            raise CompartmentViolation(
                f"compartment {active} read register r{index} "
                f"owned by compartment {entry.owner}"
            )
        return entry.value

    def write(self, index: int, value: int) -> None:
        """Write a register, tagging it with the active compartment."""
        self._check_index(index)
        mask = (1 << (8 * self.register_bytes)) - 1
        self._registers[index] = _TaggedValue(
            value & mask, self.manager.active_id
        )

    def owner_of(self, index: int) -> int:
        self._check_index(index)
        return self._registers[index].owner

    # -- interrupt save/restore (the malicious-OS boundary) ------------------

    def _serialize(self) -> bytes:
        return b"".join(
            entry.value.to_bytes(self.register_bytes, "big")
            for entry in self._registers
        )

    def interrupt_save(self) -> InterruptFrame:
        """Encrypt the active compartment's registers for delivery to the OS.

        Uses a pad derived from a *mutating* per-compartment counter so two
        interrupts with identical register state never produce identical
        ciphertext, and authenticates the frame so restore can reject
        forgeries."""
        active = self.manager.active_id
        if active == SHARED_ID:
            raise ConfigurationError(
                "interrupt_save outside a compartment: nothing to protect"
            )
        compartment = self.manager.get(active)
        compartment.interrupt_counter += 1
        counter = compartment.interrupt_counter
        plaintext = self._serialize()
        pad = self._frame_pad(compartment, counter, len(plaintext))
        ciphertext = xor_bytes(plaintext, pad)
        tag = self._frame_tag(compartment, counter, ciphertext)
        for index in range(self.n_registers):
            self._registers[index] = _TaggedValue()  # scrub for the OS
        return InterruptFrame(active, counter, ciphertext, tag)

    def interrupt_restore(self, frame: InterruptFrame) -> None:
        """Decrypt and re-install a saved frame for the resuming task."""
        compartment = self.manager.get(frame.xom_id)
        expected_tag = self._frame_tag(
            compartment, frame.counter, frame.ciphertext
        )
        if not constant_time_equal(frame.tag, expected_tag):
            raise CompartmentViolation(
                "interrupt frame failed authentication — forged or corrupted"
            )
        if frame.counter != compartment.interrupt_counter:
            raise CompartmentViolation(
                f"interrupt frame counter {frame.counter} is stale "
                f"(expected {compartment.interrupt_counter}) — replayed frame"
            )
        pad = self._frame_pad(
            compartment, frame.counter, len(frame.ciphertext)
        )
        plaintext = xor_bytes(frame.ciphertext, pad)
        for index in range(self.n_registers):
            start = index * self.register_bytes
            value = int.from_bytes(
                plaintext[start : start + self.register_bytes], "big"
            )
            self._registers[index] = _TaggedValue(value, frame.xom_id)

    @staticmethod
    def _frame_pad(compartment: Compartment, counter: int,
                   length: int) -> bytes:
        block = compartment.cipher.block_size
        padded_length = -(-length // block) * block
        # Disambiguate frame pads from memory-line pads by a high tweak bit.
        seed = (1 << (8 * block - 1)) | counter * 0x10000
        return pad_for_seed(compartment.cipher, seed, padded_length)[:length]

    @staticmethod
    def _frame_tag(compartment: Compartment, counter: int,
                   ciphertext: bytes) -> bytes:
        key_block = compartment.cipher.encrypt_block(
            bytes(compartment.cipher.block_size)
        )
        message = counter.to_bytes(8, "big") + ciphertext
        return hmac_sha256(key_block, message)[:16]

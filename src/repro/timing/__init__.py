"""Event-count timing models for the trace-driven evaluation."""

from repro.secure.engine import LatencyParams
from repro.timing.model import (
    SNCEventCounts,
    SNCTimingSim,
    TraceEvents,
    baseline_cycles,
    calibrate_compute_cycles,
    normalized_time,
    otp_cycles,
    slowdown_pct,
    snc_traffic_pct,
    xom_cycles,
)

__all__ = [
    "LatencyParams",
    "SNCEventCounts",
    "SNCTimingSim",
    "TraceEvents",
    "baseline_cycles",
    "calibrate_compute_cycles",
    "normalized_time",
    "otp_cycles",
    "slowdown_pct",
    "snc_traffic_pct",
    "xom_cycles",
]

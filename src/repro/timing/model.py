"""Event-count timing: how the evaluation prices memory-system events.

The paper's own results justify this structure — Figure 10's XOM slowdowns
are Figure 3's multiplied by 102/50 almost exactly, i.e. *slowdown composes
linearly from per-event latencies*.  So one cache/SNC simulation yields
event counts, and pricing them under any :class:`LatencyParams` regenerates
any latency configuration (which is how Figure 10 is produced without
re-simulating).

The SNC timing simulator here mirrors the control flow of the functional
:class:`~repro.secure.otp_engine.OTPEngine` exactly — same
:class:`~repro.secure.snc.SequenceNumberCache` structure, same policy
decisions — just without moving bytes.  The cross-check test in
``tests/timing`` drives both with one trace and asserts identical event
counts, so the functional and timing layers cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.secure.engine import LatencyParams
from repro.secure.snc import SequenceNumberCache, SNCConfig, SNCPolicy


@dataclass
class SNCEventCounts:
    """What happened at the SNC while servicing one L2 miss stream."""

    overlapped_reads: int = 0  # SNC query hit (or version-0 first touch)
    seqnum_miss_reads: int = 0  # LRU query miss: table fetch on critical path
    direct_reads: int = 0  # no-replacement fallback: XOM serial path
    allocate_queries: int = 0  # write-allocate fetches (off critical path)
    update_hits: int = 0
    update_misses: int = 0
    rejected_updates: int = 0  # no-replacement, full: direct encryption
    table_fetches: int = 0  # SEQNUM_READ transfers (traffic)
    table_spills: int = 0  # SEQNUM_WRITE transfers (traffic)

    @property
    def reads(self) -> int:
        return self.overlapped_reads + self.seqnum_miss_reads + self.direct_reads

    @property
    def extra_transfers(self) -> int:
        """SNC-induced bus transfers, in transactions (each moves one
        sequence-number entry; see :func:`snc_traffic_pct` for the
        byte-relative Figure 9 metric)."""
        return self.table_fetches + self.table_spills

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)


class SNCTimingSim:
    """Byte-free mirror of the OTP engine's SNC decision logic."""

    def __init__(self, config: SNCConfig):
        self.snc = SequenceNumberCache(config)
        self.counts = SNCEventCounts()
        self._direct_lines: set[int] = set()
        self._fallback_seq: dict[int, int] = {}

    def read_miss(self, line_index: int, critical: bool = True) -> None:
        """An L2 miss fetches a data line through the engine.

        ``critical=True`` for load misses (the CPU is stalled on the
        result); ``critical=False`` for write-allocate fetches, which the
        store buffer hides (paper §3.4: writes are off the critical path)
        but which still need the sequence number to decrypt the line.
        """
        seq = self.snc.query(line_index)
        if seq is not None:
            if critical:
                self.counts.overlapped_reads += 1
            else:
                self.counts.allocate_queries += 1
            return
        if self.snc.config.policy is SNCPolicy.NO_REPLACEMENT:
            if critical:
                if line_index in self._direct_lines:
                    self.counts.direct_reads += 1
                else:
                    # Untouched vendor-image line: version-0 pad, overlapped.
                    self.counts.overlapped_reads += 1
            else:
                self.counts.allocate_queries += 1
            return
        # LRU: fetch the spilled number, install it, maybe spill a victim.
        if critical:
            self.counts.seqnum_miss_reads += 1
        else:
            self.counts.allocate_queries += 1
        self.counts.table_fetches += 1
        victim = self.snc.insert(line_index, 0)
        if victim is not None:
            self.counts.table_spills += 1

    def writeback(self, line_index: int) -> None:
        """A dirty L2 line is evicted through the engine."""
        seq = self.snc.update(line_index)
        if seq is not None:
            self.counts.update_hits += 1
            return
        self.counts.update_misses += 1
        if self.snc.config.policy is SNCPolicy.LRU:
            self.counts.table_fetches += 1
            victim = self.snc.insert(line_index, 0)
            if victim is not None:
                self.counts.table_spills += 1
            return
        if self.snc.can_insert(line_index):
            seq = self._fallback_seq.get(line_index, 0) + 1
            self._fallback_seq[line_index] = seq
            self.snc.insert(line_index, seq)
            self._direct_lines.discard(line_index)
        else:
            self.snc.note_rejection()
            self.counts.rejected_updates += 1
            self._direct_lines.add(line_index)

    def reset_counts(self) -> None:
        """Zero the counters while keeping warm state (end of warmup)."""
        self.counts.reset()


@dataclass(frozen=True)
class TraceEvents:
    """Everything a priced configuration needs, from one simulation."""

    name: str
    read_misses: int  # critical (load) L2 misses — the CPU stalls on these
    allocate_misses: int  # write-allocate fetches — hidden by the store path
    writebacks: int  # dirty L2 evictions reaching memory
    compute_cycles: int  # non-memory cycles (calibrated, see workloads.spec)
    snc: SNCEventCounts | None = None  # present for OTP configurations
    read_misses_alt_l2: int | None = None  # Figure 8's 384KB L2 re-simulation
    line_bytes: int = 128
    seq_bytes: int = 2

    @property
    def program_transactions(self) -> int:
        """L2<->memory line transfers (loads, allocations, writebacks)."""
        return self.read_misses + self.allocate_misses + self.writebacks


def baseline_cycles(events: TraceEvents, lat: LatencyParams) -> float:
    """The insecure processor: every read miss pays one memory latency."""
    return events.compute_cycles + events.read_misses * lat.memory


def xom_cycles(events: TraceEvents, lat: LatencyParams,
               use_alt_l2: bool = False) -> float:
    """XOM: every read miss pays memory plus serial crypto."""
    misses = events.read_misses
    if use_alt_l2:
        if events.read_misses_alt_l2 is None:
            raise ValueError("trace carries no alternate-L2 miss count")
        misses = events.read_misses_alt_l2
    return events.compute_cycles + misses * lat.serial_read


def otp_cycles(events: TraceEvents, lat: LatencyParams) -> float:
    """The paper's scheme, priced from the SNC event mix."""
    if events.snc is None:
        raise ValueError("trace carries no SNC events")
    snc = events.snc
    return (
        events.compute_cycles
        + snc.overlapped_reads * lat.overlapped_read
        + snc.seqnum_miss_reads * lat.seqnum_miss_read
        + snc.direct_reads * lat.serial_read
    )


def slowdown_pct(secure_cycles: float, base_cycles: float) -> float:
    """Percent slowdown over the insecure baseline (Figures 3, 5, 6, 7, 10)."""
    if base_cycles <= 0:
        raise ValueError("baseline cycles must be positive")
    return (secure_cycles / base_cycles - 1.0) * 100.0


def normalized_time(secure_cycles: float, base_cycles: float) -> float:
    """Execution time normalized to the baseline (Figure 8)."""
    return secure_cycles / base_cycles


def snc_traffic_pct(events: TraceEvents) -> float:
    """SNC-induced extra memory traffic, percent of L2<->memory traffic
    (Figure 9), measured in *bytes*: each spill/fill moves one
    ``seq_bytes`` entry versus ``line_bytes`` per program line transfer.

    The byte basis is the only reading consistent with the paper's
    magnitudes — benchmarks with measurable SNC miss rates (mcf at 6.44%
    slowdown) still report well under 1% traffic, which a per-transaction
    count could not produce; see EXPERIMENTS.md."""
    if events.snc is None:
        raise ValueError("trace carries no SNC events")
    if events.program_transactions == 0:
        return 0.0
    extra_bytes = events.snc.extra_transfers * events.seq_bytes
    program_bytes = events.program_transactions * events.line_bytes
    return 100.0 * extra_bytes / program_bytes


def calibrate_compute_cycles(read_misses: int, xom_slowdown_pct: float,
                             lat: LatencyParams | None = None) -> int:
    """Solve for compute cycles from a published Figure 3 XOM slowdown.

    From ``s = R*crypto / (C + R*memory)`` (XOM adds ``crypto`` serially to
    each of the ``R`` read misses over a baseline of ``C + R*memory``)::

        C = R * (crypto / s - memory)

    This is the documented calibration step: Figure 3 *characterises* each
    benchmark's memory-boundedness; all downstream figures then emerge from
    simulation.  See DESIGN.md §2.
    """
    lat = lat or LatencyParams()
    s = xom_slowdown_pct / 100.0
    if s <= 0:
        raise ValueError("XOM slowdown must be positive")
    compute = read_misses * (lat.crypto / s - lat.memory)
    if compute < 0:
        raise ValueError(
            f"slowdown {xom_slowdown_pct}% exceeds the all-memory bound "
            f"(crypto/memory = {lat.crypto / lat.memory:.2f})"
        )
    return int(round(compute))

"""Event-count timing: how the evaluation prices memory-system events.

The paper's own results justify this structure — Figure 10's XOM slowdowns
are Figure 3's multiplied by 102/50 almost exactly, i.e. *slowdown composes
linearly from per-event latencies*.  So one cache/SNC simulation yields
event counts, and pricing them under any :class:`LatencyParams` regenerates
any latency configuration (which is how Figure 10 is produced without
re-simulating).

The SNC timing simulator here drives the *same*
:class:`~repro.secure.snc_policy.SNCPolicyCore` state machine as the
functional :class:`~repro.secure.otp_engine.OTPEngine` — one decision
procedure, two consumers — so the functional and timing layers cannot
drift apart by construction (the cross-check tests in ``tests/timing``
still assert it).  Scheme variants plug in their own core via
``core_factory``; the scheme registry
(:mod:`repro.secure.schemes`) binds each registered scheme to its core,
its engine, and its pricing function below.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.secure.context import TaskContexts
from repro.secure.engine import LatencyParams
from repro.secure.integrity import IntegrityEventCounts, get_integrity
from repro.secure.snc import Evicted, SequenceNumberCache, SNCConfig
from repro.secure.snc_policy import (
    ReadClass,
    SNCPolicyCore,
    SwitchStrategy,
    WriteClass,
)

#: The compacted trace-event vocabulary the record/replay engine speaks
#: (:mod:`repro.eval.record`).  Each event is a ``(kind, line, aux)``
#: triple; ``aux`` is the writeback owner's XOM id for
#: :data:`EVENT_WRITEBACK`, the incoming task's XOM id for
#: :data:`EVENT_SWITCH`, and 0 otherwise.  Defined here because
#: :meth:`SNCTimingSim.replay_events` is the hot consumer.
EVENT_READ = 0  # critical (load) L2 miss: the CPU stalls on the line
EVENT_ALLOC = 1  # write-allocate L2 miss: hidden by the store path
EVENT_WRITEBACK = 2  # dirty L2 eviction reaching memory (aux = owner)
EVENT_SWITCH = 3  # §4.3 context switch (aux = incoming XOM id)
EVENT_RESET = 4  # warmup boundary: zero all counters, keep warm state


@dataclass
class SNCEventCounts:
    """What happened at the SNC while servicing one L2 miss stream."""

    overlapped_reads: int = 0  # SNC query hit (or version-0 first touch)
    seqnum_miss_reads: int = 0  # LRU query miss: table fetch on critical path
    direct_reads: int = 0  # no-replacement fallback: XOM serial path
    allocate_queries: int = 0  # write-allocate fetches (off critical path)
    update_hits: int = 0
    update_misses: int = 0
    rejected_updates: int = 0  # no-replacement, full: direct encryption
    table_fetches: int = 0  # SEQNUM_READ transfers (traffic)
    table_spills: int = 0  # SEQNUM_WRITE transfers (traffic)
    switches: int = 0  # §4.3 context switches seen by this SNC
    switch_spills: int = 0  # entries spilled at switch time (FLUSH only)

    @property
    def reads(self) -> int:
        return self.overlapped_reads + self.seqnum_miss_reads + self.direct_reads

    @property
    def extra_transfers(self) -> int:
        """SNC-induced bus transfers, in transactions (each moves one
        sequence-number entry; see :func:`snc_traffic_pct` for the
        byte-relative Figure 9 metric)."""
        return self.table_fetches + self.table_spills

    def reset(self) -> None:
        for field in fields(self):
            setattr(self, field.name, 0)


class SNCTimingSim:
    """Byte-free twin of the OTP engine: the shared policy core over a
    value-faithful (but unencrypted) sequence-number spill table.

    The table is a plain dict standing in for the encrypted in-memory
    table the functional engine maintains — fetches and spills move the
    same values, so even value-dependent scheme variants (split counters
    overflowing to direct encryption) stay count-identical across the two
    layers.

    Multi-programmed scenarios (§4.3) drive the same simulator: a
    :class:`~repro.secure.context.TaskContexts` keeps one policy core per
    task over the shared SNC, the spill table is keyed per owner, and
    :meth:`switch_task` routes context switches through the cores'
    strategy hooks (``switch_strategy`` selects FLUSH or TAG).  A
    single-task trace never switches, so the figure pipeline's counts are
    unchanged.
    """

    def __init__(self, config: SNCConfig, core_factory=None,
                 switch_strategy: SwitchStrategy = SwitchStrategy.TAG):
        self.snc = SequenceNumberCache(config)
        self.counts = SNCEventCounts()
        self._table: dict[tuple[int, int], int] = {}
        # The spill-table callbacks close over the counts and the table,
        # never over ``self``: bound methods here would tie the sim, its
        # task contexts, and every core into reference cycles, so a
        # finished sim (plus its whole warm SNC) could only be reclaimed
        # by the cyclic collector — a long-lived process pricing many
        # configurations then stalls in gen-2 GC passes.
        counts = self.counts
        table = self._table

        def fetch_entry(xom_id: int, line_index: int,
                        _get=table.get) -> int:
            counts.table_fetches += 1
            return _get((xom_id, line_index), 0)

        def spill_entry(victim: Evicted) -> None:
            counts.table_spills += 1
            table[(victim.xom_id, victim.line_index)] = victim.seq

        self._fetch_entry = fetch_entry
        self._spill_entry = spill_entry
        self.tasks = TaskContexts(
            self.snc,
            core_factory=core_factory,
            strategy=switch_strategy,
            fetch_entry=fetch_entry,
            spill_entry=spill_entry,
        )
        self.core = self.tasks.current

    def begin_task(self, xom_id: int) -> None:
        """Select the first scheduled task (no switch is counted)."""
        self.core = self.tasks.begin(xom_id)

    def switch_task(self, xom_id: int) -> None:
        """One §4.3 context switch: the outgoing core's strategy hook
        runs (FLUSH spills count as table spills — they are real
        transfers — and as ``switch_spills`` for switch-time pricing),
        then the incoming task's core takes over."""
        spilled = self.tasks.switch_to(xom_id)
        self.counts.switches += 1
        self.counts.switch_spills += spilled
        self.core = self.tasks.current

    def read_miss(self, line_index: int, critical: bool = True) -> None:
        """An L2 miss fetches a data line through the engine.

        ``critical=True`` for load misses (the CPU is stalled on the
        result); ``critical=False`` for write-allocate fetches, which the
        store buffer hides (paper §3.4: writes are off the critical path)
        but which still need the sequence number to decrypt the line.
        """
        decision = self.core.read(line_index)
        if not critical:
            self.counts.allocate_queries += 1
        elif decision.kind is ReadClass.OVERLAPPED:
            self.counts.overlapped_reads += 1
        elif decision.kind is ReadClass.SEQNUM_MISS:
            self.counts.seqnum_miss_reads += 1
        else:
            self.counts.direct_reads += 1

    def writeback(self, line_index: int, xom_id: int | None = None) -> None:
        """A dirty L2 line is evicted through the engine.

        ``xom_id`` names the line's *owner* when it differs from the
        scheduled task: a shared L2 can evict a descheduled task's dirty
        line during another's quantum, and the sequence-number update
        must run under the owner's tag (in hardware the owner tag
        travels with the line).  ``None`` means the current task's line.
        A descheduled owner's write goes through its core's
        ``write_descheduled`` path, which under FLUSH leaves no
        residency (the SNC holds only the running task's entries).
        """
        core = self.core
        if xom_id is not None and xom_id != core.xom_id:
            decision = self.tasks.core_for(xom_id).write_descheduled(
                line_index
            )
        else:
            decision = core.write(line_index)
        if decision.kind is WriteClass.UPDATE_HIT:
            self.counts.update_hits += 1
            return
        self.counts.update_misses += 1
        if decision.kind is WriteClass.REJECTED:
            self.counts.rejected_updates += 1

    def reset_counts(self) -> None:
        """Zero the counters while keeping warm state (end of warmup)."""
        self.counts.reset()

    def replay_events(self, events) -> None:
        """Apply one recorded event stream (:mod:`repro.eval.record`) in
        a single batch — the replay backend's hot loop.

        Count-identical to feeding the same events through
        :meth:`read_miss` / :meth:`writeback` / :meth:`switch_task` /
        :meth:`reset_counts` one at a time (the fused pipeline's path;
        ``tests/eval/test_replay_differential.py`` pins this), but much
        faster: the per-event wrapper layers are inlined, classification
        counters live in locals, and the two common arms — an SNC query
        hit and an update hit under the base core — skip the decision
        object entirely.  Variant cores keep their behavior because the
        inlining stops at :class:`~repro.secure.snc_policy.SNCPolicyCore`
        hook granularity: ``_read_query_miss`` / ``_write_update_hit`` /
        ``_write_update_miss`` are dispatched virtually, and a core that
        overrides ``read``/``write`` themselves falls back to the fully
        generic calls.
        """
        counts = self.counts
        tasks = self.tasks
        core = self.core
        snc = self.snc
        # Hook-granular inlining is only valid while read/write are the
        # base implementations (query/update + hook dispatch).  All cores
        # of one sim share a class, so this is loop-invariant.
        core_cls = type(core)
        fast_read = core_cls.read is SNCPolicyCore.read
        fast_write = core_cls.write is SNCPolicyCore.write
        base_write_hit = (core_cls._write_update_hit
                          is SNCPolicyCore._write_update_hit)
        overlapped_kind = ReadClass.OVERLAPPED
        seqnum_kind = ReadClass.SEQNUM_MISS
        update_hit_kind = WriteClass.UPDATE_HIT
        rejected_kind = WriteClass.REJECTED
        snc_query = snc.query
        snc_update = snc.update
        # The event-kind constants are module globals; the loop below
        # runs per recorded event, so bind them locally.
        ev_read, ev_writeback, ev_alloc, ev_switch = (
            EVENT_READ, EVENT_WRITEBACK, EVENT_ALLOC, EVENT_SWITCH
        )

        def hoist(core):
            return (core.xom_id, core.read, core.write,
                    core._read_query_miss, core._write_update_hit,
                    core._write_update_miss)

        (xom, core_read, core_write, read_query_miss, write_update_hit,
         write_update_miss) = hoist(core)
        overlapped = seqnum_miss = direct = allocate = 0
        update_hits = update_misses = rejected = 0

        for kind, line, aux in events:
            if kind == ev_read:
                if fast_read:
                    if snc_query(line, xom) is not None:
                        overlapped += 1
                        continue
                    decision_kind = read_query_miss(line)[0]
                else:
                    decision_kind = core_read(line)[0]
                if decision_kind is overlapped_kind:
                    overlapped += 1
                elif decision_kind is seqnum_kind:
                    seqnum_miss += 1
                else:
                    direct += 1
            elif kind == ev_writeback:
                if aux != xom:
                    # A descheduled owner's dirty line: route through its
                    # own core, exactly as :meth:`writeback` does.
                    decision_kind = tasks.core_for(aux).write_descheduled(
                        line
                    )[0]
                elif fast_write:
                    seq = snc_update(line, xom)
                    if seq is not None:
                        if base_write_hit:
                            update_hits += 1
                            continue
                        decision_kind = write_update_hit(line, seq)[0]
                    else:
                        decision_kind = write_update_miss(line)[0]
                else:
                    decision_kind = core_write(line)[0]
                if decision_kind is update_hit_kind:
                    update_hits += 1
                else:
                    update_misses += 1
                    if decision_kind is rejected_kind:
                        rejected += 1
            elif kind == ev_alloc:
                allocate += 1
                if fast_read:
                    if snc_query(line, xom) is None:
                        read_query_miss(line)
                else:
                    core_read(line)
            elif kind == ev_switch:
                spilled = tasks.switch_to(aux)
                counts.switches += 1
                counts.switch_spills += spilled
                core = tasks.current
                (xom, core_read, core_write, read_query_miss,
                 write_update_hit, write_update_miss) = hoist(core)
            else:  # EVENT_RESET: the warmup boundary
                counts.reset()
                overlapped = seqnum_miss = direct = allocate = 0
                update_hits = update_misses = rejected = 0

        self.core = core
        counts.overlapped_reads += overlapped
        counts.seqnum_miss_reads += seqnum_miss
        counts.direct_reads += direct
        counts.allocate_queries += allocate
        counts.update_hits += update_hits
        counts.update_misses += update_misses
        counts.rejected_updates += rejected


@dataclass(frozen=True)
class TraceEvents:
    """Everything a priced configuration needs, from one simulation."""

    name: str
    read_misses: int  # critical (load) L2 misses — the CPU stalls on these
    allocate_misses: int  # write-allocate fetches — hidden by the store path
    writebacks: int  # dirty L2 evictions reaching memory
    compute_cycles: int  # non-memory cycles (calibrated, see workloads.spec)
    snc: SNCEventCounts | None = None  # present for OTP configurations
    #: Present when an integrity configuration was simulated for this
    #: trace; ``counts.provider`` names the registered
    #: :class:`~repro.secure.integrity.IntegritySpec` whose pricer
    #: interprets it (:func:`integrity_cycles` dispatches).
    integrity: IntegrityEventCounts | None = None
    line_bytes: int = 128
    seq_bytes: int = 2

    @property
    def program_transactions(self) -> int:
        """L2<->memory line transfers (loads, allocations, writebacks)."""
        return self.read_misses + self.allocate_misses + self.writebacks


def baseline_cycles(events: TraceEvents, lat: LatencyParams) -> float:
    """The insecure processor: every read miss pays one memory latency.

    No integrity term by construction — the baseline is every figure's
    denominator and verifies nothing.  Handing it integrity events is a
    caller error (the cost would silently vanish from the table), so it
    raises rather than prices them."""
    if events.integrity is not None:
        raise ValueError(
            f"{events.name}: the insecure baseline verifies nothing — "
            "price integrity events through a protected scheme"
        )
    return events.compute_cycles + events.read_misses * lat.memory


def integrity_cycles(events: TraceEvents, lat: LatencyParams) -> float:
    """Extra cycles of the trace's integrity configuration, or 0.

    Dispatches through the integrity registry on ``counts.provider``, so
    every scheme pricer adds the same term and a new provider file prices
    itself.  Returns an exact int 0 when the trace carries no integrity
    events, keeping integrity-free pricing bit-identical to the
    pre-integrity code paths."""
    counts = events.integrity
    if counts is None:
        return 0
    return get_integrity(counts.provider).price(counts, lat)


def xom_cycles(events: TraceEvents, lat: LatencyParams) -> float:
    """XOM: every read miss pays memory plus serial crypto.

    Pricing the Figure 8 alternate hierarchy needs no special case here:
    :meth:`~repro.eval.pipeline.BenchmarkEvents.trace_events` with
    ``alt_l2=True`` substitutes the 384KB-L2 miss counts."""
    return (
        events.compute_cycles
        + events.read_misses * lat.serial_read
        + integrity_cycles(events, lat)
    )


def otp_cycles(events: TraceEvents, lat: LatencyParams) -> float:
    """The paper's scheme, priced from the SNC event mix.

    Multi-programmed scenarios add the §4.3 switch-time term: a FLUSH
    switch drains ``switch_spills`` encrypt-and-store operations before
    the next task can fill the SNC (:attr:`LatencyParams.seqnum_spill`
    per entry; the post-switch re-warm misses are already in
    ``seqnum_miss_reads``).  Single-task traces carry zero switches, so
    the figure pipeline's totals are untouched."""
    if events.snc is None:
        raise ValueError("trace carries no SNC events")
    snc = events.snc
    return (
        events.compute_cycles
        + snc.overlapped_reads * lat.overlapped_read
        + snc.seqnum_miss_reads * lat.seqnum_miss_read
        + snc.direct_reads * lat.serial_read
        + snc.switch_spills * lat.seqnum_spill
        + integrity_cycles(events, lat)
    )


def slowdown_pct(secure_cycles: float, base_cycles: float) -> float:
    """Percent slowdown over the insecure baseline (Figures 3, 5, 6, 7, 10)."""
    if base_cycles <= 0:
        raise ValueError("baseline cycles must be positive")
    return (secure_cycles / base_cycles - 1.0) * 100.0


def normalized_time(secure_cycles: float, base_cycles: float) -> float:
    """Execution time normalized to the baseline (Figure 8)."""
    return secure_cycles / base_cycles


def snc_traffic_pct(events: TraceEvents) -> float:
    """SNC-induced extra memory traffic, percent of L2<->memory traffic
    (Figure 9), measured in *bytes*: each spill/fill moves one
    ``seq_bytes`` entry versus ``line_bytes`` per program line transfer.

    The byte basis is the only reading consistent with the paper's
    magnitudes — benchmarks with measurable SNC miss rates (mcf at 6.44%
    slowdown) still report well under 1% traffic, which a per-transaction
    count could not produce; see EXPERIMENTS.md."""
    if events.snc is None:
        raise ValueError("trace carries no SNC events")
    if events.program_transactions == 0:
        return 0.0
    extra_bytes = events.snc.extra_transfers * events.seq_bytes
    program_bytes = events.program_transactions * events.line_bytes
    return 100.0 * extra_bytes / program_bytes


def calibrate_compute_cycles(read_misses: int, xom_slowdown_pct: float,
                             lat: LatencyParams | None = None) -> int:
    """Solve for compute cycles from a published Figure 3 XOM slowdown.

    From ``s = R*crypto / (C + R*memory)`` (XOM adds ``crypto`` serially to
    each of the ``R`` read misses over a baseline of ``C + R*memory``)::

        C = R * (crypto / s - memory)

    This is the documented calibration step: Figure 3 *characterises* each
    benchmark's memory-boundedness; all downstream figures then emerge from
    simulation.  See DESIGN.md §2.
    """
    lat = lat or LatencyParams()
    s = xom_slowdown_pct / 100.0
    if s <= 0:
        raise ValueError("XOM slowdown must be positive")
    compute = read_misses * (lat.crypto / s - lat.memory)
    if compute < 0:
        raise ValueError(
            f"slowdown {xom_slowdown_pct}% exceeds the all-memory bound "
            f"(crypto/memory = {lat.crypto / lat.memory:.2f})"
        )
    return int(round(compute))

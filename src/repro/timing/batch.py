"""Event-major batch replay: many timing sims, one pass over the trace.

:meth:`~repro.timing.model.SNCTimingSim.replay_events` walks a recorded
stream once per configuration — the per-event reference path.  A sweep
prices the *same* stream through many configurations, so the decode work
(column iteration, kind dispatch) repeats per configuration for no
reason.  :func:`replay_events_batch` inverts the loops: one pass over
the shared columns applies each event to every live sim (and every
integrity model), so the per-event decode is paid once for the whole
batch.

Inner-loop Python frames are what actually dominate the reference
path — the Algorithm 1 miss arm alone crosses five of them (hook →
table fetch → install → insert → spill) — so inverting the loops only
wins if the per-lane work sheds those frames instead of adding handler
calls of its own.  This module therefore *generates* the batch loop:
:func:`_compile` renders one specialized function per batch shape (the
``namedtuple``/``dataclasses`` technique), with every lane's event arms
unrolled inline, counters in flat locals, geometry constants (``ways``,
set count, XOM id) baked in as literals, and — when the stream contains
no context switches — the ``(line, xom)`` key tuple built once per
event and shared by every lane.  Each lane gets the deepest arm its
configuration supports:

* **deep** — the base :class:`~repro.secure.snc_policy.SNCPolicyCore`
  hooks over an LRU SNC with the timing simulator's standard
  fetch/spill callbacks: both the ``snc.query`` / ``snc.update`` hit
  paths *and* the miss arms (table fetch, insert, LRU eviction, victim
  spill) run as inline ``OrderedDict`` / ``dict`` calls, zero frames.
* **fast** — base ``read``/``write`` but a variant hook, a
  no-replacement SNC, or nonstandard callbacks: the hit paths inline,
  the ``_read_query_miss`` / ``_write_update_hit`` /
  ``_write_update_miss`` hooks dispatch virtually, exactly like the
  reference loop.
* **generic** — a core overriding ``read``/``write`` themselves falls
  back to the fully generic calls.

Count-identical to running :meth:`replay_events` per sim by
construction: sims never interact, each sees the identical event
sequence in order, and every generated arm mirrors the reference
loop's — the same descheduled-owner writeback routing, the same
warmup-boundary reset (classification and traffic counters zeroed, SNC
lifetime stats and warm state kept).  The inlined hit/miss tallies are
accumulated in locals and flushed into ``sim.counts`` / ``snc.stats``
afterwards.  ``tests/eval/test_replay_differential.py`` pins the
equality; ``benchmarks/bench_trace_throughput.py`` tracks the speedup.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence

from repro.secure.snc import SNCPolicy
from repro.secure.snc_policy import ReadClass, SNCPolicyCore, WriteClass
from repro.timing.model import (
    EVENT_ALLOC,
    EVENT_READ,
    EVENT_SWITCH,
    EVENT_WRITEBACK,
    SNCTimingSim,
)

#: Per-lane counter locals, in flush order (see :func:`_flush`).  The
#: first block mirrors the reference loop's locals and the traffic
#: counts its callbacks bump; the second is the SNC stat increments the
#: inlined paths bypass.
_COUNTERS = ("o", "sm", "dr", "al", "uh", "um", "rj", "tf", "tp",
             "qh", "qm", "sh", "su", "ins", "ev", "rjs")
#: The subset zeroed at the warmup boundary (the counts-backed ones;
#: SNC stats are lifetime values the reference never resets).
_RESET_COUNTERS = ("o", "sm", "dr", "al", "uh", "um", "rj", "tf", "tp")

#: Compiled batch functions keyed by ``(lane shapes, n_models,
#: has_switch)``.  The key depends only on lane *shapes*, so every
#: shard of a lane-sharded pass whose lanes share a composition reuses
#: one compile — pricing a lane subset never recompiles per shard.
#: Sharding does multiply the distinct shapes a long-lived warm worker
#: sees (one per shard size, not one per sweep), so the cache is
#: LRU-bounded instead of growing without limit.
_COMPILED: OrderedDict[tuple, object] = OrderedDict()
_COMPILED_CAPACITY = 128
_compiled_hits = 0
_compiled_misses = 0


def compiled_batch_info() -> tuple[int, int, int]:
    """``(cached functions, cache hits, compiles)`` for this process —
    observability for the sharding tests and benchmarks (a sharded
    sweep should show shard passes hitting this cache, not compiling
    per shard)."""
    return len(_COMPILED), _compiled_hits, _compiled_misses


def _lane_shape(sim: SNCTimingSim, has_switch: bool) -> tuple:
    """The source-shaping parameters of one sim's generated arms:
    ``(deep, deep_nr, fast_read, fast_write, base_write_hit, n_sets,
    ways, xom_id)``."""
    core = sim.core
    core_cls = type(core)
    snc = sim.snc
    fast_read = core_cls.read is SNCPolicyCore.read
    fast_write = core_cls.write is SNCPolicyCore.write
    base_write_hit = (core_cls._write_update_hit
                      is SNCPolicyCore._write_update_hit)
    base_hooks = (
        fast_read and fast_write and base_write_hit
        and core_cls._read_query_miss is SNCPolicyCore._read_query_miss
        and core_cls._write_update_miss is SNCPolicyCore._write_update_miss
    )
    # The deep LRU tier additionally requires the timing sim's own
    # fetch/spill callbacks — anything else keeps virtual dispatch.
    # ``_spill_entry`` is passed to cores unwrapped (one shared cycle-
    # free closure), so callback identity proves this core's installs
    # really land in ``sim._table`` with ``sim.counts`` doing the
    # counting.
    deep = (
        base_hooks
        and snc.config.policy is SNCPolicy.LRU
        and sim.tasks._fetch_entry == getattr(sim, "_fetch_entry", None)
        and core._spill_entry == getattr(sim, "_spill_entry", None)
    )
    # The deep no-replacement tier never touches the spill table (the
    # policy's whole point), but its per-line fallback state lives on
    # the *core* — so it is only valid while no context switch can swap
    # cores under the baked bindings.
    deep_nr = (
        base_hooks
        and snc.config.policy is SNCPolicy.NO_REPLACEMENT
        and not has_switch
    )
    return (deep, deep_nr, fast_read, fast_write, base_write_hit,
            snc._n_sets, snc._ways, core.xom_id)


def _lane_binds(sim: SNCTimingSim, shape: tuple) -> tuple:
    """The runtime objects the generated preamble unpacks for one lane."""
    deep, deep_nr = shape[0], shape[1]
    snc = sim.snc
    entries = snc._sets[0]
    core = sim.core
    return (
        entries.get, entries.move_to_end, entries.__setitem__,
        entries.popitem, entries, snc._sets,
        sim._table.get if deep else None,
        sim._table.__setitem__ if deep else None,
        core.direct_lines if deep_nr else None,
        core.fallback_seq if deep_nr else None,
        core.read, core.write, core._read_query_miss,
        core._write_update_hit, core._write_update_miss,
        sim.tasks, sim.counts,
    )


def _dict_ops(i: int, n_sets: int) -> tuple[list[str], str, str, str,
                                            str, str]:
    """The set-pick preamble and entry-dict operation expressions for
    one lane: fully associative lanes use the prebound single-set
    methods, set-associative lanes resolve the set per line."""
    if n_sets == 1:
        return ([], f"g{i}", f"m{i}", f"s{i}", f"p{i}", f"len(e{i})")
    pick = [f"E = st{i}[line % {n_sets}]"]
    return (pick, "E.get", "E.move_to_end", "E.__setitem__",
            "E.popitem", "len(E)")


def _install_lines(i: int, size: str, pop: str, seti: str, key: str,
                   ways: int) -> list[str]:
    """The inlined ``snc.insert`` + victim spill (Algorithm 1's install
    step): evict the LRU entry to the in-memory table when full, then
    install ``seq`` under ``key``."""
    return [
        f"if {size} >= {ways}:",
        f"    (ol, ox), osq = {pop}(False)",
        f"    ev{i} += 1",
        f"    tp{i} += 1",
        f"    ts{i}((ox, ol), osq)",
        f"{seti}({key}, seq)",
        f"ins{i} += 1",
    ]


def _read_arm(i: int, shape: tuple, key: str, xom: str) -> list[str]:
    deep, deep_nr, fast_read, _, _, n_sets, ways, _ = shape
    if not fast_read:
        return [
            f"k = cr{i}(line)[0]",
            f"if k is OV: o{i} += 1",
            f"elif k is SQ: sm{i} += 1",
            f"else: dr{i} += 1",
        ]
    pick, get, mte, seti, pop, size = _dict_ops(i, n_sets)
    hit = pick + [
        f"if {get}({key}) is not None:",
        f"    qh{i} += 1",
        f"    {mte}({key})",
        f"    o{i} += 1",
        "else:",
        f"    qm{i} += 1",
    ]
    if deep_nr:
        # No-replacement query miss: a line that fell back to direct
        # encryption takes the XOM serial path, anything else is an
        # untouched vendor-image line read with the version-0 pad.
        return hit + [
            f"    if line in dl{i}: dr{i} += 1",
            f"    else: o{i} += 1",
        ]
    if not deep:
        return hit + [
            f"    k = rq{i}(line)[0]",
            f"    if k is OV: o{i} += 1",
            f"    elif k is SQ: sm{i} += 1",
            f"    else: dr{i} += 1",
        ]
    # Algorithm 1, query-miss arm: fetch the spilled number, install it
    # (spilling the LRU victim), decrypt with it — a SEQNUM_MISS.
    return hit + [
        f"    tf{i} += 1",
        f"    seq = tg{i}(({xom}, line), 0)",
    ] + ["    " + ln
         for ln in _install_lines(i, size, pop, seti, key, ways)] + [
        f"    sm{i} += 1",
    ]


def _alloc_arm(i: int, shape: tuple, key: str, xom: str) -> list[str]:
    deep, deep_nr, fast_read, _, _, n_sets, ways, _ = shape
    if not fast_read:
        return [f"al{i} += 1", f"cr{i}(line)"]
    pick, get, mte, seti, pop, size = _dict_ops(i, n_sets)
    hit = [f"al{i} += 1"] + pick + [
        f"if {get}({key}) is not None:",
        f"    qh{i} += 1",
        f"    {mte}({key})",
        "else:",
        f"    qm{i} += 1",
    ]
    if deep_nr:
        # The no-replacement query-miss arm classifies without state
        # effects, and an allocate discards the classification.
        return hit
    if not deep:
        return hit + [f"    rq{i}(line)"]
    return hit + [
        f"    tf{i} += 1",
        f"    seq = tg{i}(({xom}, line), 0)",
    ] + ["    " + ln
         for ln in _install_lines(i, size, pop, seti, key, ways)]


def _write_arm(i: int, shape: tuple, key: str, xom: str) -> list[str]:
    deep, deep_nr, _, fast_write, base_write_hit, n_sets, ways, _ = shape
    classify = [
        f"if k is UH: uh{i} += 1",
        "else:",
        f"    um{i} += 1",
        f"    if k is RJ: rj{i} += 1",
    ]
    desched = [
        f"if owner != {xom}:",
        # A descheduled owner's dirty line routes through its own core,
        # exactly as the reference loop does.
        f"    k = tk{i}.core_for(owner).write_descheduled(line)[0]",
    ] + ["    " + ln for ln in classify]
    if not fast_write:
        return desched + [
            "else:",
            f"    k = cw{i}(line)[0]",
        ] + ["    " + ln for ln in classify]
    pick, get, mte, seti, pop, size = _dict_ops(i, n_sets)
    body = desched + ["else:"] + ["    " + ln for ln in pick] + [
        f"    seq = {get}({key})",
        "    if seq is not None:",
        f"        sh{i} += 1",
        "        seq += 1",
        f"        {seti}({key}, seq)",
        f"        {mte}({key})",
    ]
    if base_write_hit:
        body += [f"        uh{i} += 1"]
    else:
        body += [
            f"        k = wh{i}(line, seq)[0]",
        ] + ["        " + ln for ln in classify]
    body += [
        "    else:",
        f"        su{i} += 1",
    ]
    if deep_nr:
        # No-replacement update miss: a full set rejects the line to
        # direct encryption; otherwise issue the next fallback sequence
        # number (never reusing a pad) and admit the line.
        return body + [
            f"        if {size} >= {ways}:",
            f"            rjs{i} += 1",
            f"            dl{i}.add(line)",
            f"            um{i} += 1",
            f"            rj{i} += 1",
            "        else:",
            f"            seq = fb{i}.get(line, 0) + 1",
            f"            fb{i}[line] = seq",
            f"            {seti}({key}, seq)",
            f"            ins{i} += 1",
            f"            dl{i}.discard(line)",
            f"            um{i} += 1",
        ]
    if not deep:
        return body + [
            f"        k = wm{i}(line)[0]",
        ] + ["        " + ln for ln in classify]
    # Algorithm 1, update-miss arm: fetch, increment, install.
    return body + [
        f"        tf{i} += 1",
        f"        seq = tg{i}(({xom}, line), 0) + 1",
    ] + ["        " + ln
         for ln in _install_lines(i, size, pop, seti, key, ways)] + [
        f"        um{i} += 1",
    ]


def _build_source(shapes: Sequence[tuple], n_models: int,
                  has_switch: bool) -> str:
    """Render the specialized batch function for one batch shape."""
    n = len(shapes)
    lanes = range(n)
    # Without switches every lane's xom is a compile-time constant;
    # when they all agree, one (line, xom) key per event serves every
    # lane.  With switches the xom is a rebindable local and keys are
    # built per lane (scenario streams — rare next to sweep traffic).
    shared_key = (not has_switch and n > 0
                  and len({shape[7] for shape in shapes}) == 1)
    if has_switch:
        xoms = {i: f"x{i}" for i in lanes}
        keys = {i: f"key{i}" for i in lanes}
    else:
        xoms = {i: str(shapes[i][7]) for i in lanes}
        keys = {i: ("key" if shared_key
                    else f"(line, {shapes[i][7]})") for i in lanes}

    out = ["def _batch(kinds, lines, aux, lanes, models, OV, SQ, UH, RJ):"]

    def emit(depth, lns):
        out.extend("    " * depth + ln for ln in lns)

    for i in lanes:
        emit(1, [f"(g{i}, m{i}, s{i}, p{i}, e{i}, st{i}, tg{i}, ts{i}, "
                 f"dl{i}, fb{i}, cr{i}, cw{i}, rq{i}, wh{i}, wm{i}, "
                 f"tk{i}, cn{i}) = lanes[{i}]"])
        emit(1, [" = ".join(f"{name}{i}" for name in _COUNTERS) + " = 0"])
        if has_switch:
            emit(1, [f"x{i} = {shapes[i][7]}"])
    for j in range(n_models):
        emit(1, [f"v{j} = models[{j}].verify",
                 f"w{j} = models[{j}].update"])

    def emit_keys(needs: int) -> None:
        """Per-lane key assignments for the switch case; ``needs``
        indexes the shape flag that says the arm uses the key."""
        if shared_key:
            emit(3, [f"key = (line, {shapes[0][7]})"])
        elif has_switch:
            for i in lanes:
                if shapes[i][needs]:
                    emit(3, [f"key{i} = (line, x{i})"])

    emit(1, ["for kind, line, owner in zip(kinds, lines, aux):"])
    emit(2, [f"if kind == {EVENT_READ}:"])
    emit_keys(needs=2)  # fast_read arms touch the entry dict
    for i in lanes:
        emit(3, _read_arm(i, shapes[i], keys[i], xoms[i]))
    for j in range(n_models):
        emit(3, [f"v{j}(line, critical=True)"])
    emit(2, [f"elif kind == {EVENT_WRITEBACK}:"])
    emit_keys(needs=3)  # fast_write arms touch the entry dict
    for i in lanes:
        emit(3, _write_arm(i, shapes[i], keys[i], xoms[i]))
    for j in range(n_models):
        emit(3, [f"w{j}(line)"])
    emit(2, [f"elif kind == {EVENT_ALLOC}:"])
    emit_keys(needs=2)
    for i in lanes:
        emit(3, _alloc_arm(i, shapes[i], keys[i], xoms[i]))
    for j in range(n_models):
        emit(3, [f"v{j}(line, critical=False)"])
    emit(2, [f"elif kind == {EVENT_SWITCH}:"])
    if has_switch and n:
        for i in lanes:
            emit(3, [
                f"spilled = tk{i}.switch_to(owner)",
                f"cn{i}.switches += 1",
                f"cn{i}.switch_spills += spilled",
                f"C = tk{i}.current",
                f"x{i} = C.xom_id",
                f"cr{i} = C.read",
                f"cw{i} = C.write",
                f"rq{i} = C._read_query_miss",
                f"wh{i} = C._write_update_hit",
                f"wm{i} = C._write_update_miss",
            ])
    else:
        emit(3, ["pass"])
    emit(2, ["else:"])  # EVENT_RESET: the warmup boundary
    for i in lanes:
        emit(3, [f"cn{i}.reset()",
                 " = ".join(f"{name}{i}" for name in _RESET_COUNTERS)
                 + " = 0"])
    for j in range(n_models):
        emit(3, [f"models[{j}].reset_counts()"])
    if not lanes and not n_models:
        emit(3, ["pass"])
    emit(1, ["return (" + ", ".join(
        "(" + ", ".join(f"{name}{i}" for name in _COUNTERS) + ")"
        for i in lanes
    ) + ("," if n == 1 else "") + ")"])
    return "\n".join(out) + "\n"


def _compile(shapes: tuple, n_models: int, has_switch: bool):
    global _compiled_hits, _compiled_misses
    key = (shapes, n_models, has_switch)
    fn = _COMPILED.get(key)
    if fn is None:
        _compiled_misses += 1
        namespace: dict = {}
        exec(_build_source(shapes, n_models, has_switch), namespace)
        fn = namespace["_batch"]
        _COMPILED[key] = fn
        while len(_COMPILED) > _COMPILED_CAPACITY:
            _COMPILED.popitem(last=False)
    else:
        _compiled_hits += 1
        _COMPILED.move_to_end(key)
    return fn


def _flush(sim: SNCTimingSim, c: tuple) -> None:
    """Fold one lane's accumulated counters back into its sim."""
    counts = sim.counts
    counts.overlapped_reads += c[0]
    counts.seqnum_miss_reads += c[1]
    counts.direct_reads += c[2]
    counts.allocate_queries += c[3]
    counts.update_hits += c[4]
    counts.update_misses += c[5]
    counts.rejected_updates += c[6]
    counts.table_fetches += c[7]
    counts.table_spills += c[8]
    stats = sim.snc.stats
    stats.query_hits += c[9]
    stats.query_misses += c[10]
    stats.update_hits += c[11]
    stats.update_misses += c[12]
    stats.insertions += c[13]
    stats.evictions += c[14]
    stats.rejected += c[15]
    # The reference loop tracks the scheduled core in a local and
    # writes it back; ``tasks.current`` is that same core.
    sim.core = sim.tasks.current


def replay_events_batch(sims: Sequence[SNCTimingSim],
                        integrity_models: Sequence,
                        kinds, lines, aux) -> None:
    """Apply one recorded column set to every sim and integrity model.

    ``kinds`` / ``lines`` / ``aux`` are the parallel typed columns of a
    :class:`~repro.eval.record.Recording`.  Scenario sims must have had
    :meth:`~repro.timing.model.SNCTimingSim.begin_task` called already
    (the caller owns flavor setup); this function only walks events.
    """
    if not sims and not integrity_models:
        return
    has_switch = EVENT_SWITCH in kinds
    shapes = tuple(_lane_shape(sim, has_switch) for sim in sims)
    fn = _compile(shapes, len(integrity_models), has_switch)
    results = fn(
        kinds, lines, aux,
        [_lane_binds(sim, shape) for sim, shape in zip(sims, shapes)],
        integrity_models,
        ReadClass.OVERLAPPED, ReadClass.SEQNUM_MISS,
        WriteClass.UPDATE_HIT, WriteClass.REJECTED,
    )
    for sim, lane_counts in zip(sims, results):
        _flush(sim, lane_counts)

"""Low-level helpers shared by the crypto and simulator subsystems."""

from repro.utils.bitops import (
    bytes_to_int,
    bytes_to_words,
    int_to_bytes,
    permute_bits,
    rotl32,
    rotl,
    rotr32,
    words_to_bytes,
    xor_bytes,
)
from repro.utils.intmath import ceil_div, is_power_of_two, log2_exact

__all__ = [
    "bytes_to_int",
    "bytes_to_words",
    "int_to_bytes",
    "permute_bits",
    "rotl",
    "rotl32",
    "rotr32",
    "words_to_bytes",
    "xor_bytes",
    "ceil_div",
    "is_power_of_two",
    "log2_exact",
]

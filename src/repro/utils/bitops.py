"""Bit- and byte-level primitives used by the from-scratch ciphers.

These are deliberately plain functions over ``int`` and ``bytes`` — the
ciphers in :mod:`repro.crypto` are specified in terms of bit permutations
and word rotations, and keeping the vocabulary identical to the standards
documents (FIPS 46-3, FIPS 197) makes the implementations auditable.
"""

from __future__ import annotations

from collections.abc import Sequence

_MASK32 = 0xFFFFFFFF


def rotl(value: int, shift: int, width: int) -> int:
    """Rotate ``value`` left by ``shift`` bits within a ``width``-bit word."""
    shift %= width
    mask = (1 << width) - 1
    value &= mask
    return ((value << shift) | (value >> (width - shift))) & mask


def rotl32(value: int, shift: int) -> int:
    """Rotate a 32-bit word left."""
    shift %= 32
    value &= _MASK32
    return ((value << shift) | (value >> (32 - shift))) & _MASK32


def rotr32(value: int, shift: int) -> int:
    """Rotate a 32-bit word right."""
    return rotl32(value, 32 - (shift % 32))


def permute_bits(value: int, table: Sequence[int], in_width: int) -> int:
    """Apply a DES-style bit permutation.

    ``table`` lists, for each *output* bit (MSB first), the 1-based position
    of the *input* bit (counted from the MSB of an ``in_width``-bit word).
    This is exactly the convention of the tables printed in FIPS 46-3, so the
    tables in :mod:`repro.crypto.des` can be transcribed verbatim.
    """
    out = 0
    for position in table:
        out = (out << 1) | ((value >> (in_width - position)) & 1)
    return out


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"xor_bytes length mismatch: {len(a)} != {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))


def bytes_to_int(data: bytes) -> int:
    """Interpret ``data`` as a big-endian unsigned integer."""
    return int.from_bytes(data, "big")


def int_to_bytes(value: int, length: int) -> bytes:
    """Encode ``value`` as a big-endian byte string of exactly ``length``."""
    return value.to_bytes(length, "big")


def bytes_to_words(data: bytes) -> list[int]:
    """Split ``data`` into big-endian 32-bit words."""
    if len(data) % 4:
        raise ValueError("byte string length must be a multiple of 4")
    return [int.from_bytes(data[i : i + 4], "big") for i in range(0, len(data), 4)]


def words_to_bytes(words: Sequence[int]) -> bytes:
    """Join 32-bit words into a big-endian byte string."""
    return b"".join(w.to_bytes(4, "big") for w in words)

"""Small integer-math helpers for cache geometry and address arithmetic."""

from __future__ import annotations


def ceil_div(a: int, b: int) -> int:
    """Integer division rounding toward positive infinity."""
    return -(-a // b)


def is_power_of_two(n: int) -> bool:
    """True for 1, 2, 4, 8, ... — the only legal cache geometries."""
    return n > 0 and (n & (n - 1)) == 0


def log2_exact(n: int) -> int:
    """Return ``log2(n)`` for an exact power of two, else raise ValueError."""
    if not is_power_of_two(n):
        raise ValueError(f"{n} is not a power of two")
    return n.bit_length() - 1

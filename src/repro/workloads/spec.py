"""SPEC2000-shaped synthetic workload models — the evaluation's substrate.

We cannot run the SPEC2000 binaries (licensing; and 10 billion instructions
of SimpleScalar is not a Python afternoon), so each benchmark is modelled
as a composition of :mod:`repro.workloads.patterns` generators emitting the
*L2-input* reference stream.  Pattern structure and footprints are chosen
from each program's well-known memory behaviour and the constraints the
paper's own per-benchmark numbers imply (see DESIGN.md §5 for the
protocol); the single calibrated scalar per benchmark is its compute-cycle
weight, solved from Figure 3's published XOM slowdown by
:func:`repro.timing.model.calibrate_compute_cycles`.

Every model with a footprint that matters to the SNC begins with an
**initialization phase** that writes its data structures once, sequentially
— the way real programs build graphs, dictionaries and arrays.  This is
load-bearing for the no-replacement policy: the paper's Figure 5 NoRepl
column (gcc at 18.07% vs LRU's 1.40%) is exactly the story of an SNC
filled once by initialization writes and useless forever after.

Each model function is written once, against a small **forms** toolkit
(:class:`PatternForms`) supplying the structural combinators — phases,
mixture, the top-level patterns.  Bound to :data:`SCALAR_FORMS` it builds
the classic scalar generator (:meth:`BenchmarkModel.generator`); bound to
:data:`BLOCK_FORMS` it builds the columnar drawer twin
(:meth:`BenchmarkModel.drawer`) the block record pass consumes.  The two
constructions share every region constant and weight by definition, and
the drawer combinators preserve per-reference RNG order, so both forms
emit element-identical streams (pinned by the workload property tests and
the record differential suite).  Mixture *components* stay scalar
iterators in both forms — the mixture selection draw decides which
component is pulled next, so component draws cannot be batched.

What each model encodes (and which published number pins it down):

* ``art`` / ``vpr`` / ``equake`` — SNC-friendly footprints; their Figure 5
  slowdowns sit at the XOR floor.  equake's footprint straddles the 32KB
  SNC (Figure 6's 7.58%).
* ``mcf`` — tiered pointer-structure footprint larger than every SNC; its
  hit rate grows with SNC size (15.23 / 6.44 / 1.45 across Figure 6).
* ``gcc`` / ``parser`` / ``vortex`` — initialization regions larger than
  the SNC whose *tails* host the hot main-loop data, so a no-replacement
  SNC is poisoned while LRU recovers.
* ``ammp`` — power-of-two-aligned scientific arrays: its lines map into a
  quarter of the SNC's sets, the Figure 7 32-way pathology (2.76 -> 9.62).
* ``gzip`` / ``mesa`` — compute-bound, with a write-streaming component
  that produces Figure 9's SNC spill traffic without read-side slowdown.
"""

from __future__ import annotations

import random
from array import array
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.workloads.patterns import (
    U32_TYPECODE,
    WRITE_TYPECODE,
    Block,
    Drawer,
    Ref,
    Region,
    mixture,
    mixture_drawer,
    phases,
    phases_drawer,
    pointer_chase,
    random_uniform,
    random_uniform_drawer,
    sequential,
    sequential_drawer,
)

#: A model factory: given a seeded RNG and a forms toolkit, build the
#: benchmark's stream in that toolkit's form (scalar iterator or drawer).
GeneratorFactory = Callable[[random.Random, "PatternForms"], Any]


def aligned_random(region_base: int, n_blocks: int, block_lines: int,
                   block_stride: int, write_fraction: float,
                   rng: random.Random) -> Iterator[Ref]:
    """Uniform random over blocks placed at power-of-two strides.

    Models large-stride scientific arrays (ammp): every touched line has
    ``line % block_stride < block_lines``, so a set-associative SNC indexed
    by low line bits sees only ``block_lines`` of its sets in use."""
    while True:
        block = rng.randrange(n_blocks)
        offset = rng.randrange(block_lines)
        line = region_base + block * block_stride + offset
        yield line, rng.random() < write_fraction


def write_once(region: Region, rng: random.Random) -> Iterator[Ref]:
    """One sequential write pass: the canonical initialization loop."""
    return sequential(region, write_fraction=1.0, rng=rng)


def write_once_drawer(region: Region, rng: random.Random) -> Drawer:
    """Drawer twin of :func:`write_once`."""
    return sequential_drawer(region, write_fraction=1.0, rng=rng)


def block_write_once(base: int, n_blocks: int, block_lines: int,
                     stride: int) -> Iterator[Ref]:
    """One write pass over aligned blocks only (ammp's array layout)."""
    for block in range(n_blocks):
        for offset in range(block_lines):
            yield base + block * stride + offset, True


def block_write_once_drawer(base: int, n_blocks: int, block_lines: int,
                            stride: int) -> Drawer:
    """Drawer twin of :func:`block_write_once` — fully deterministic, so
    the whole finite column is precomputed and served as slices.  Like
    the scalar generator it is finite: it only ever appears as a
    non-final :func:`~repro.workloads.patterns.phases_drawer` stage,
    which draws exactly its stage count."""
    lines = array(U32_TYPECODE)
    for block in range(n_blocks):
        start = base + block * stride
        lines.extend(range(start, start + block_lines))
    position = 0

    def draw(count: int) -> Block:
        nonlocal position
        part = lines[position:position + count]
        position += count
        return part, array(WRITE_TYPECODE, bytes([1])) * len(part)

    return draw


def _init_then(main: Iterator[Ref], rng: random.Random,
               *init_regions: Region) -> Iterator[Ref]:
    """Prefix ``main`` with one write pass over each region, in order.

    Order matters under the no-replacement policy: the SNC fills with the
    *first* ~32K lines written and never changes afterwards."""
    stages = [
        (write_once(region, rng), region.n_lines) for region in init_regions
    ]
    stages.append((main, 1 << 62))
    return phases(stages)


def _init_then_drawer(main: Drawer, rng: random.Random,
                      *init_regions: Region) -> Drawer:
    """Drawer twin of :func:`_init_then`."""
    stages = [
        (write_once_drawer(region, rng), region.n_lines)
        for region in init_regions
    ]
    stages.append((main, 1 << 62))
    return phases_drawer(stages)


@dataclass(frozen=True)
class PatternForms:
    """The combinators a model factory composes, in one stream form.

    ``sequential`` / ``random_uniform`` here are the *top-level* pattern
    spellings (a benchmark whose main loop is one pattern); mixture
    components are always built as scalar iterators directly from
    :mod:`repro.workloads.patterns`."""

    sequential: Callable = field(repr=False)
    random_uniform: Callable = field(repr=False)
    mixture: Callable = field(repr=False)
    phases: Callable = field(repr=False)
    write_once: Callable = field(repr=False)
    block_write_once: Callable = field(repr=False)
    init_then: Callable = field(repr=False)


#: The classic form: everything is a scalar ``(line, is_write)`` iterator.
SCALAR_FORMS = PatternForms(
    sequential=sequential,
    random_uniform=random_uniform,
    mixture=mixture,
    phases=phases,
    write_once=write_once,
    block_write_once=block_write_once,
    init_then=_init_then,
)

#: The columnar form: the top of the composition is a
#: :data:`~repro.workloads.patterns.Drawer` emitting typed blocks.
BLOCK_FORMS = PatternForms(
    sequential=sequential_drawer,
    random_uniform=random_uniform_drawer,
    mixture=mixture_drawer,
    phases=phases_drawer,
    write_once=write_once_drawer,
    block_write_once=block_write_once_drawer,
    init_then=_init_then_drawer,
)


@dataclass(frozen=True)
class BenchmarkModel:
    """One SPEC2000-shaped workload."""

    name: str
    xom_slowdown_pct: float  # Figure 3's published value: calibration input
    make: GeneratorFactory = field(repr=False)

    def _rng(self, seed: int) -> random.Random:
        return random.Random(f"{self.name}:{seed}")

    def generator(self, seed: int = 1) -> Iterator[Ref]:
        return self.make(self._rng(seed), SCALAR_FORMS)

    def drawer(self, seed: int = 1) -> Drawer:
        """The columnar twin of :meth:`generator`: same seed derivation,
        same composition, element-identical stream — as typed blocks."""
        return self.make(self._rng(seed), BLOCK_FORMS)


# Base line index of the data space (1MB VA, in 128B lines), and spacing
# generous enough that composed regions never overlap.  _BASE is a multiple
# of 1024 so ammp's aligned blocks keep their set alignment.
_BASE = 8192


def _art(rng: random.Random, f: PatternForms = SCALAR_FORMS):
    # Streaming image match: sequential sweeps over ~1.75MB, L2-hostile,
    # comfortably inside even the 32KB SNC (14000 < 16K entries).
    region = Region(_BASE, 14000)
    main = f.sequential(region, write_fraction=0.25, rng=rng)
    return f.init_then(main, rng, region)


def _equake(rng: random.Random, f: PatternForms = SCALAR_FORMS):
    # Hot sparse-matrix loop + a cold sweep; 28.5K lines total: fits the
    # 64KB SNC (32K), thrashes the 32KB SNC (16K) -> Figure 6's 7.58%.
    hot_region = Region(_BASE, 8500)
    cold_region = Region(_BASE + 40960, 20000)
    hot = sequential(hot_region, write_fraction=0.20, rng=rng)
    cold = sequential(cold_region, write_fraction=0.20, rng=rng)
    main = f.mixture([(hot, 0.74), (cold, 0.26)], rng)
    return f.init_then(main, rng, hot_region, cold_region)


def _ammp(rng: random.Random, f: PatternForms = SCALAR_FORMS):
    # Aligned molecular-dynamics arrays: 38 blocks of 256 lines every 1024
    # lines -> only 256 of a 32-way SNC's 1024 sets are usable, ~38 lines
    # per usable set against 32 ways (Figure 7's 2.76% -> 9.62%).  The
    # wide unaligned tier provides the shallow capacity curve of Figure 6.
    n_blocks, block_lines, stride = 38, 256, 1024
    hot_region = Region(_BASE, 1500)
    aligned_base = _BASE + 65536
    wide_region = Region(_BASE + 131072, 32000)
    hot = sequential(hot_region, write_fraction=0.30, rng=rng)
    aligned = aligned_random(
        region_base=aligned_base, n_blocks=n_blocks, block_lines=block_lines,
        block_stride=stride, write_fraction=0.25, rng=rng,
    )  # 9728 lines in sets 0..255 (mod 1024)
    wide = random_uniform(wide_region, 0.25, rng)
    main = f.mixture([(hot, 0.36), (aligned, 0.55), (wide, 0.09)], rng)
    # Initialization writes the blocks only (not the stride gaps), then the
    # wide tier: the no-replacement SNC keeps hot+aligned+the wide head.
    stages = [
        (f.write_once(hot_region, rng), hot_region.n_lines),
        (
            f.block_write_once(aligned_base, n_blocks, block_lines, stride),
            n_blocks * block_lines,
        ),
        (f.write_once(wide_region, rng), wide_region.n_lines),
        (main, 1 << 62),
    ]
    return f.phases(stages)


def _bzip2(rng: random.Random, f: PatternForms = SCALAR_FORMS):
    # Block-sorting over a ~730KB working buffer plus a recycled input
    # window; buffer straddles both L2 sizes (Figure 8's 1.16 -> 1.03),
    # buffer+window straddle the 32KB SNC (Figure 6's 1.61 -> 0.56).
    buffer_region = Region(_BASE, 5800)
    window_region = Region(_BASE + 40960, 12000)
    buffer = random_uniform(buffer_region, 0.35, rng)
    window = sequential(window_region, write_fraction=0.10, rng=rng)
    main = f.mixture([(buffer, 0.97), (window, 0.03)], rng)
    return f.init_then(main, rng, buffer_region, window_region)


def _gcc(rng: random.Random, f: PatternForms = SCALAR_FORMS):
    # IR construction writes a 44K-line arena once; the optimization loop
    # then works on structures allocated at the arena's *tail* — past the
    # 32K-entry fill point, so a no-replacement SNC helps not at all
    # (Figure 5: 18.07% vs LRU's 1.40%).
    arena = Region(_BASE, 44000)
    hot = random_uniform(Region(_BASE + 36000, 4500), 0.30, rng)
    leak = random_uniform(Region(_BASE + 65536, 45000), 0.20, rng)
    main = f.mixture([(hot, 0.985), (leak, 0.015)], rng)
    return f.init_then(main, rng, arena)


def _gzip(rng: random.Random, f: PatternForms = SCALAR_FORMS):
    # Compute-bound compression: a small hot dictionary (L2-resident), a
    # recycled cold window, and a write-streaming output buffer whose SNC
    # churn produces Figure 9's 1.03% spill traffic.
    hot_region = Region(_BASE, 1400)
    cold_region = Region(_BASE + 16384, 3000)
    hot = random_uniform(hot_region, 0.25, rng)
    cold = random_uniform(cold_region, 0.20, rng)
    out = sequential(Region(_BASE + 131072, 40000), write_fraction=1.0,
                     rng=rng)
    # A thin stream of first-touch reads (fresh input blocks): the small
    # non-floor residual the paper shows (0.31-0.33% across SNC sizes).
    fresh = random_uniform(Region(_BASE + 262144, 50000), 0.0, rng)
    main = f.mixture([(hot, 0.892), (cold, 0.030), (out, 0.070),
                      (fresh, 0.008)], rng)
    return f.init_then(main, rng, hot_region, cold_region)


def _mcf(rng: random.Random, f: PatternForms = SCALAR_FORMS):
    # Network-simplex pointer chasing over ~7MB with a locality gradient.
    # Initialization builds the arc arrays (tier 1) and then the node pool
    # (tier 3): the no-replacement SNC fills before tier 2 or the tier-3
    # tail are ever written (Figure 5's 13.51%).
    tier1_region = Region(_BASE, 13000)
    tier2_region = Region(_BASE + 16384, 12000)
    tier3_region = Region(_BASE + 65536, 22000)
    tier1 = random_uniform(tier1_region, 0.30, rng)
    tier2 = random_uniform(tier2_region, 0.30, rng)
    tier3 = pointer_chase(tier3_region, 0.30, rng)
    main = f.mixture([(tier1, 0.81), (tier2, 0.12), (tier3, 0.07)], rng)
    # Initialization order is the NoRepl story: the node pool (tier 3)
    # is built first and claims most of the SNC; the hot arc arrays
    # (tier 1 tail, tier 2) arrive after it is full.
    return f.init_then(main, rng, tier3_region, tier1_region, tier2_region)


def _mesa(rng: random.Random, f: PatternForms = SCALAR_FORMS):
    # Software-rendering pipeline: nearly compute-bound, small texture set,
    # frame-buffer write streaming (Figure 9 traffic without slowdown).
    hot_region = Region(_BASE, 1600)
    texture_region = Region(_BASE + 16384, 2500)
    hot = random_uniform(hot_region, 0.25, rng)
    textures = random_uniform(texture_region, 0.05, rng)
    framebuffer = sequential(Region(_BASE + 131072, 36000),
                             write_fraction=1.0, rng=rng)
    fresh = random_uniform(Region(_BASE + 262144, 30000), 0.0, rng)
    main = f.mixture([(hot, 0.866), (textures, 0.030), (framebuffer, 0.100),
                      (fresh, 0.004)], rng)
    return f.init_then(main, rng, hot_region, texture_region)


def _parser(rng: random.Random, f: PatternForms = SCALAR_FORMS):
    # The dictionary build writes a 40K-line arena; parsing then hits the
    # arena tail (hot) plus per-sentence structures (mid) and rare deep
    # dictionary walks (cold).
    arena = Region(_BASE, 40000)
    hot = random_uniform(Region(_BASE + 30000, 4800), 0.30, rng)
    mid = random_uniform(Region(_BASE + 65536, 18000), 0.25, rng)
    cold = random_uniform(Region(_BASE + 131072, 60000), 0.20, rng)
    main = f.mixture([(hot, 0.892), (mid, 0.100), (cold, 0.008)], rng)
    return f.init_then(main, rng, arena)


def _vortex(rng: random.Random, f: PatternForms = SCALAR_FORMS):
    # Object database: transaction setup writes the store; lookups then
    # touch hot objects at the store's tail plus a broad mid tier and a
    # long-tail of rarely revisited objects.
    store = Region(_BASE, 40000)
    hot = random_uniform(Region(_BASE + 33000, 3600), 0.30, rng)
    mid = random_uniform(Region(_BASE + 65536, 24000), 0.25, rng)
    cold = random_uniform(Region(_BASE + 163840, 60000), 0.20, rng)
    main = f.mixture([(hot, 0.888), (mid, 0.100), (cold, 0.012)], rng)
    return f.init_then(main, rng, store)


def _vpr(rng: random.Random, f: PatternForms = SCALAR_FORMS):
    # Place-and-route over a ~600KB netlist: misses both L2 sizes hard
    # (Figure 8: 1.21 / 1.04) yet trivially fits every SNC (flat 0.24%).
    region = Region(_BASE, 4800)
    main = f.random_uniform(region, 0.30, rng)
    return f.init_then(main, rng, region)


#: The eleven benchmarks of the paper's evaluation, Figure 3 order.
BENCHMARKS: tuple[BenchmarkModel, ...] = (
    BenchmarkModel("ammp", 23.02, _ammp),
    BenchmarkModel("art", 34.91, _art),
    BenchmarkModel("bzip2", 15.82, _bzip2),
    BenchmarkModel("equake", 14.27, _equake),
    BenchmarkModel("gcc", 18.30, _gcc),
    BenchmarkModel("gzip", 1.08, _gzip),
    BenchmarkModel("mcf", 34.76, _mcf),
    BenchmarkModel("mesa", 0.63, _mesa),
    BenchmarkModel("parser", 13.39, _parser),
    BenchmarkModel("vortex", 7.05, _vortex),
    BenchmarkModel("vpr", 21.16, _vpr),
)

BY_NAME = {bench.name: bench for bench in BENCHMARKS}

"""Workload sources: who supplies the reference stream a simulation runs.

The trace pipeline used to be hard-wired to one synthetic benchmark per
simulation.  A :class:`WorkloadSource` abstracts the supplier, so the same
pipeline — jobs, scheduler, cache, pricer — runs three kinds of input:

* :class:`SingleBenchmark` — one synthetic SPEC2000-shaped model
  (:mod:`repro.workloads.spec`), the classic figure path;
* :class:`TraceFile` — a recorded trace file
  (:mod:`repro.workloads.tracegen` format, plain or gzipped), replayed in
  a loop;
* :class:`MultiTaskInterleaver` — several benchmarks round-robined with a
  configurable quantum, emitting explicit :class:`Switch` events at the
  quantum boundaries — the §4.3 multi-programmed scenario.

A source's :meth:`~WorkloadSource.stream` yields plain ``(line_index,
is_write)`` references interspersed with :class:`Switch` markers; its
:attr:`~WorkloadSource.tasks` declare each task's XOM id (the SNC owner
tag) and its Figure 3 XOM-slowdown calibration input, which is how the
pipeline solves per-task compute cycles.  Single-task sources never emit
a ``Switch``, so their streams are exactly the references the classic
path consumed.
"""

from __future__ import annotations

import itertools
import os
from array import array
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ConfigurationError
from repro.workloads.patterns import (
    DEFAULT_BLOCK_SIZE,
    Block,
    Ref,
    U32_TYPECODE,
    WRITE_TYPECODE,
    blocks_from_drawer,
    make_block,
)
from repro.workloads.spec import BY_NAME, BenchmarkModel
from repro.workloads.tracegen import load_trace

#: Each interleaved task's lines live in a disjoint slice of the line-index
#: space (tasks do not share memory; distinct virtual spaces map to
#: distinct physical lines).  A power-of-two stride is a multiple of every
#: cache/SNC set count in use, so each task keeps its own set-mapping
#: behaviour.  The SNC owner tags still matter: every entry, spill and
#: flush is keyed by the task's XOM id.
TASK_LINE_STRIDE = 1 << 26

#: Calibration default for trace files, which carry no Figure 3 anchor:
#: a mid-field memory-boundedness (the 11-benchmark Figure 3 average is
#: ~16.8%).  Override per trace when the origin workload is known.
TRACE_XOM_SLOWDOWN_PCT = 15.0


def _shift_lines(lines: array, offset: int) -> array:
    """Rebase a line column into a task's disjoint line-index slice."""
    if not offset:
        return lines
    try:
        return array(lines.typecode, map(offset.__add__, lines))
    except OverflowError:  # 64+ tasks push past u32; promote
        return array("Q", map(offset.__add__, lines))


@dataclass(frozen=True)
class Switch:
    """Explicit context-switch event in a multi-task stream."""

    prev_task: int  # XOM id being descheduled
    next_task: int  # XOM id being scheduled


@dataclass(frozen=True)
class TaskBinding:
    """One schedulable task: its XOM id (SNC owner tag), a label, and the
    Figure 3 XOM slowdown that calibrates its compute weight."""

    xom_id: int
    label: str
    xom_slowdown_pct: float


class WorkloadSource:
    """Protocol: a named supplier of a (possibly multi-task) ref stream.

    Implementations provide :attr:`name`, :attr:`tasks` (at least one
    :class:`TaskBinding`; the first is the initially scheduled task) and
    :meth:`stream`, an endless iterator of :data:`~repro.workloads.
    patterns.Ref` tuples and :class:`Switch` markers.  The simulation
    decides how many references to consume; sources must not end first.
    """

    name: str
    tasks: tuple[TaskBinding, ...]

    def stream(self, seed: int = 1) -> Iterator[Ref | Switch]:
        raise NotImplementedError

    def stream_blocks(self, seed: int = 1,
                      block_size: int = DEFAULT_BLOCK_SIZE,
                      ) -> Iterator[Block | Switch]:
        """The same stream as :meth:`stream`, as typed column blocks.

        Yields ``(lines, writes)`` pairs (``array`` columns, u32/u8) of up
        to ``block_size`` references, with :class:`Switch` markers carried
        as block boundaries: a switch always falls *between* blocks, never
        inside one.  Concatenating the blocks in order and splicing the
        switches back reproduces :meth:`stream` element-for-element —
        pinned by the workload property tests.

        This default adapter chunks :meth:`stream`; the built-in sources
        override it with natively columnar producers (same contract, none
        of the per-reference iteration).
        """
        lines: list[int] = []
        writes: list[bool] = []
        for item in self.stream(seed=seed):
            if item.__class__ is Switch:
                if lines:
                    yield make_block(lines, writes)
                    lines, writes = [], []
                yield item
                continue
            line, is_write = item
            lines.append(line)
            writes.append(is_write)
            if len(lines) == block_size:
                yield make_block(lines, writes)
                lines, writes = [], []
        if lines:  # streams are endless; kept for defensive completeness
            yield make_block(lines, writes)


class SingleBenchmark(WorkloadSource):
    """Today's path: one synthetic benchmark model, no switches."""

    def __init__(self, bench: BenchmarkModel | str):
        if isinstance(bench, str):
            bench = BY_NAME[bench]
        self.bench = bench
        self.name = bench.name
        self.tasks = (
            TaskBinding(0, bench.name, bench.xom_slowdown_pct),
        )

    def stream(self, seed: int = 1) -> Iterator[Ref | Switch]:
        return self.bench.generator(seed=seed)

    def stream_blocks(self, seed: int = 1,
                      block_size: int = DEFAULT_BLOCK_SIZE,
                      ) -> Iterator[Block | Switch]:
        return blocks_from_drawer(self.bench.drawer(seed=seed), block_size)


@lru_cache(maxsize=32)
def _trace_columns_stat(path_str: str, mtime_ns: int,
                        size: int) -> tuple[array, array]:
    """Parse a trace file into typed columns, memoized on the same
    (path, mtime, size) identity the job-hashing digest memo uses — so
    multi-seed recording of one trace parses it exactly once per edit."""
    lines: list[int] = []
    writes: list[bool] = []
    for line, is_write in load_trace(path_str):
        lines.append(line)
        writes.append(is_write)
    if not lines:
        raise ConfigurationError(f"trace {path_str} holds no references")
    try:
        line_column = array(U32_TYPECODE, lines)
    except OverflowError:
        line_column = array("Q", lines)
    return line_column, array(WRITE_TYPECODE, writes)


def _trace_columns(path) -> tuple[array, array]:
    stat = os.stat(path)
    return _trace_columns_stat(os.fspath(path), stat.st_mtime_ns,
                               stat.st_size)


class TraceFile(WorkloadSource):
    """A recorded trace file, replayed in a loop.

    The file (``R|W <line>`` lines, optionally gzipped) is parsed into
    typed columns once per on-disk identity (path, mtime, size) — the
    process-wide :func:`_trace_columns_stat` memo, same keying as the
    job-hashing digest memo — and cycled so the source is endless like
    the generators; a run longer than the trace re-walks it with warm
    state, shorter runs use a prefix.  ``xom_slowdown_pct`` supplies the
    compute calibration a raw trace cannot carry (default
    :data:`TRACE_XOM_SLOWDOWN_PCT`).
    """

    def __init__(self, path, name: str | None = None,
                 xom_slowdown_pct: float = TRACE_XOM_SLOWDOWN_PCT):
        self.path = path
        self.name = name or f"trace:{path}"
        self.tasks = (TaskBinding(0, self.name, xom_slowdown_pct),)
        self._refs: list[Ref] | None = None

    def refs(self) -> list[Ref]:
        """The materialized trace (parsed on first use per file identity)."""
        if self._refs is None:
            lines, writes = _trace_columns(self.path)
            self._refs = list(zip(lines.tolist(), map(bool, writes)))
        return self._refs

    def stream(self, seed: int = 1) -> Iterator[Ref | Switch]:
        # The seed is part of the protocol but a recorded trace is what
        # it is — replay is deliberately seed-independent.
        return itertools.cycle(self.refs())

    def stream_blocks(self, seed: int = 1,
                      block_size: int = DEFAULT_BLOCK_SIZE,
                      ) -> Iterator[Block | Switch]:
        lines, writes = _trace_columns(self.path)
        length = len(lines)
        position = 0
        while True:
            end = position + block_size
            if end <= length:
                yield lines[position:end], writes[position:end]
                position = end % length
                continue
            block_lines = lines[position:]
            block_writes = writes[position:]
            while len(block_lines) < block_size:  # wrap (short traces may
                need = block_size - len(block_lines)  # wrap repeatedly)
                block_lines += lines[:need]
                block_writes += writes[:need]
            position = (position + block_size) % length
            yield block_lines, block_writes


class MultiTaskInterleaver(WorkloadSource):
    """Round-robin several benchmarks' streams, a quantum at a time.

    Task *i* runs ``quantum`` references, then a :class:`Switch` is
    emitted and task *i+1* runs — the OS scheduling the §4.3 strategies
    answer to.  Tasks get XOM ids 0..n-1, per-task seeds ``seed + i``
    (so one benchmark listed twice still runs distinct streams), and
    disjoint :data:`TASK_LINE_STRIDE` line-index slices.  A one-task
    interleave degenerates to :class:`SingleBenchmark`'s stream exactly:
    no switches, no offset.
    """

    def __init__(self, benchmarks: Sequence[BenchmarkModel | str],
                 quantum: int):
        if not benchmarks:
            raise ConfigurationError("interleaver needs at least one task")
        if quantum <= 0:
            raise ConfigurationError("quantum must be positive")
        self.benchmarks = tuple(
            BY_NAME[bench] if isinstance(bench, str) else bench
            for bench in benchmarks
        )
        self.quantum = quantum
        names = "+".join(bench.name for bench in self.benchmarks)
        self.name = f"mix({names})@q{quantum}"
        self.tasks = tuple(
            TaskBinding(index, bench.name, bench.xom_slowdown_pct)
            for index, bench in enumerate(self.benchmarks)
        )

    def stream(self, seed: int = 1) -> Iterator[Ref | Switch]:
        generators = [
            bench.generator(seed=seed + index)
            for index, bench in enumerate(self.benchmarks)
        ]
        n_tasks = len(generators)
        if n_tasks == 1:
            return generators[0]
        return self._interleave(generators)

    def _interleave(self, generators: list[Iterator[Ref]]
                    ) -> Iterator[Ref | Switch]:
        n_tasks = len(generators)
        quantum = self.quantum
        current = 0
        while True:
            offset = current * TASK_LINE_STRIDE
            generator = generators[current]
            for _ in range(quantum):
                line, is_write = next(generator)
                yield line + offset, is_write
            next_task = (current + 1) % n_tasks
            yield Switch(current, next_task)
            current = next_task

    def stream_blocks(self, seed: int = 1,
                      block_size: int = DEFAULT_BLOCK_SIZE,
                      ) -> Iterator[Block | Switch]:
        drawers = [
            bench.drawer(seed=seed + index)
            for index, bench in enumerate(self.benchmarks)
        ]
        n_tasks = len(drawers)
        if n_tasks == 1:
            yield from blocks_from_drawer(drawers[0], block_size)
            return
        quantum = self.quantum
        current = 0
        while True:
            offset = current * TASK_LINE_STRIDE
            draw = drawers[current]
            remaining = quantum
            while remaining:
                lines, writes = draw(min(remaining, block_size))
                remaining -= len(lines)
                yield _shift_lines(lines, offset), writes
            next_task = (current + 1) % n_tasks
            yield Switch(current, next_task)
            current = next_task

"""Workload generation: pattern combinators, the 11 SPEC2000-shaped
benchmark models driving the evaluation, and the workload sources
(synthetic / trace replay / §4.3 multi-task interleaving) the simulation
pipeline consumes."""

from repro.workloads.patterns import (
    Ref,
    Region,
    mixture,
    phases,
    pointer_chase,
    random_uniform,
    sequential,
    strided,
    take,
    zipf_lines,
)
from repro.workloads.sources import (
    MultiTaskInterleaver,
    SingleBenchmark,
    Switch,
    TaskBinding,
    TraceFile,
    WorkloadSource,
)
from repro.workloads.spec import (
    BENCHMARKS,
    BY_NAME,
    BenchmarkModel,
    aligned_random,
)
from repro.workloads.tracegen import (
    TraceProfile,
    load_trace,
    parse_trace,
    profile,
    save_trace,
)

__all__ = [
    "BENCHMARKS",
    "BY_NAME",
    "BenchmarkModel",
    "MultiTaskInterleaver",
    "Ref",
    "Region",
    "SingleBenchmark",
    "Switch",
    "TaskBinding",
    "TraceFile",
    "TraceProfile",
    "WorkloadSource",
    "aligned_random",
    "load_trace",
    "mixture",
    "parse_trace",
    "phases",
    "pointer_chase",
    "profile",
    "random_uniform",
    "save_trace",
    "sequential",
    "strided",
    "take",
    "zipf_lines",
]

"""Workload generation: pattern combinators, the 11 SPEC2000-shaped
benchmark models driving the evaluation, and the workload sources
(synthetic / trace replay / §4.3 multi-task interleaving) the simulation
pipeline consumes.

Every pattern and source exists in two element-identical forms: the
scalar per-reference iterators, and the block-columnar *drawer* twins
(``*_drawer``, :meth:`WorkloadSource.stream_blocks`) the record pass
consumes in typed-array blocks."""

from repro.workloads.patterns import (
    DEFAULT_BLOCK_SIZE,
    Block,
    Drawer,
    Ref,
    Region,
    blocks_from_drawer,
    drawer_from_iterator,
    make_block,
    mixture,
    mixture_drawer,
    phases,
    phases_drawer,
    pointer_chase,
    pointer_chase_drawer,
    random_uniform,
    random_uniform_drawer,
    sequential,
    sequential_drawer,
    strided,
    strided_drawer,
    take,
    take_blocks,
    zipf_lines,
    zipf_lines_drawer,
)
from repro.workloads.sources import (
    MultiTaskInterleaver,
    SingleBenchmark,
    Switch,
    TaskBinding,
    TraceFile,
    WorkloadSource,
)
from repro.workloads.spec import (
    BENCHMARKS,
    BY_NAME,
    BenchmarkModel,
    aligned_random,
)
from repro.workloads.tracegen import (
    TraceProfile,
    load_trace,
    parse_trace,
    profile,
    save_trace,
)

__all__ = [
    "BENCHMARKS",
    "BY_NAME",
    "BenchmarkModel",
    "Block",
    "DEFAULT_BLOCK_SIZE",
    "Drawer",
    "MultiTaskInterleaver",
    "Ref",
    "Region",
    "SingleBenchmark",
    "Switch",
    "TaskBinding",
    "TraceFile",
    "TraceProfile",
    "WorkloadSource",
    "aligned_random",
    "blocks_from_drawer",
    "drawer_from_iterator",
    "load_trace",
    "make_block",
    "mixture",
    "mixture_drawer",
    "parse_trace",
    "phases",
    "phases_drawer",
    "pointer_chase",
    "pointer_chase_drawer",
    "profile",
    "random_uniform",
    "random_uniform_drawer",
    "save_trace",
    "sequential",
    "sequential_drawer",
    "strided",
    "strided_drawer",
    "take",
    "take_blocks",
    "zipf_lines",
    "zipf_lines_drawer",
]

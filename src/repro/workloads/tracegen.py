"""Trace materialization: capture, save, load and characterise reference
streams.

The evaluation pipeline streams references straight from the generators,
but materialized traces are useful for debugging workload models, sharing
regression inputs, and driving the simulator from externally produced
traces (the file format is a trivial text form any tool can emit).

Format: one reference per line, ``R <line_index>`` or ``W <line_index>``,
with ``#`` comments.  Files named ``*.gz`` are gzip-compressed
transparently on both save and load (long traces compress ~10x).
"""

from __future__ import annotations

import gzip
import io
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import ConfigurationError
from repro.workloads.patterns import Ref


def _open_trace(path: str | Path, mode: str):
    """Text handle for a trace file; ``.gz`` paths go through gzip."""
    if Path(path).suffix == ".gz":
        return gzip.open(path, f"{mode}t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def save_trace(refs: Iterable[Ref], path: str | Path,
               header: str = "") -> int:
    """Write references to a trace file; returns the count written."""
    count = 0
    with _open_trace(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for line_index, is_write in refs:
            handle.write(f"{'W' if is_write else 'R'} {line_index}\n")
            count += 1
    return count


def load_trace(path: str | Path) -> Iterator[Ref]:
    """Stream references back from a (possibly gzipped) trace file."""
    with _open_trace(path, "r") as handle:
        yield from parse_trace(handle)


def parse_trace(handle: io.TextIOBase) -> Iterator[Ref]:
    """Parse the trace format from any text stream."""
    for line_number, raw in enumerate(handle, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2 or parts[0] not in ("R", "W"):
            raise ConfigurationError(
                f"trace line {line_number}: expected 'R|W <line>', "
                f"got {raw.strip()!r}"
            )
        try:
            index = int(parts[1])
        except ValueError as err:
            raise ConfigurationError(
                f"trace line {line_number}: bad line index {parts[1]!r}"
            ) from err
        if index < 0:
            raise ConfigurationError(
                f"trace line {line_number}: negative line index"
            )
        yield index, parts[0] == "W"


@dataclass(frozen=True)
class TraceProfile:
    """Summary statistics of a reference stream."""

    references: int
    writes: int
    distinct_lines: int
    footprint_bytes: int  # distinct lines x 128
    top_line_share: float  # fraction of refs to the single hottest line

    @property
    def write_fraction(self) -> float:
        return self.writes / self.references if self.references else 0.0


def profile(refs: Iterable[Ref], line_bytes: int = 128) -> TraceProfile:
    """Characterise a stream: footprint, write mix, skew."""
    counts: Counter[int] = Counter()
    writes = 0
    total = 0
    for line_index, is_write in refs:
        counts[line_index] += 1
        writes += is_write
        total += 1
    hottest = max(counts.values()) if counts else 0
    return TraceProfile(
        references=total,
        writes=writes,
        distinct_lines=len(counts),
        footprint_bytes=len(counts) * line_bytes,
        top_line_share=hottest / total if total else 0.0,
    )

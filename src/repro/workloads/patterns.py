"""Composable memory reference pattern generators.

Each generator yields ``(line_index, is_write)`` pairs at *L2-input*
granularity — i.e. the stream of L1 misses reaching the unified L2 — which
is the level at which the paper's mechanisms act.  Line indices are in
128-byte-line units of the data virtual address space.

The generators are infinite; the workload driver takes as many references
as the configured trace length.  All randomness flows from a caller-owned
``random.Random``, so traces are exactly reproducible.

Every generator also has a **drawer** twin (``sequential`` /
``sequential_drawer``, ...): a callable ``draw(count)`` returning a
:data:`Block` of ``count`` references as two typed columns — line indices
(u32 :mod:`array`) and write bits (u8) — instead of ``count`` yielded
tuples.  Drawers consume the shared ``random.Random`` in *exactly* the
per-reference order the scalar generator does, so the block stream is
element-identical to the scalar stream (the property tests in
``tests/workloads/test_patterns.py`` pin every pair, and the golden
masters pin the scalar streams themselves).  Because they draw an exact
count, drawers compose across stage and quantum boundaries
(:func:`phases_drawer`, the multi-task interleaver) without disturbing
the RNG.  The block record pass (:func:`repro.eval.record.record_source`)
is built on them: one ``draw`` per block replaces thousands of generator
frame resumptions and per-reference tuples.
"""

from __future__ import annotations

import itertools
import random
from array import array
from bisect import bisect_left
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass

from repro.errors import ConfigurationError

Ref = tuple[int, bool]

#: Exact-width typecodes for block columns: line indices are u32 on the
#: wire (:mod:`repro.eval.trace_store` narrows to the same width), write
#: bits are single bytes.
U32_TYPECODE = next(tc for tc in "ILQ" if array(tc).itemsize == 4)
WRITE_TYPECODE = "B"

#: One block of references: (line-index column, write-bit column),
#: entry *i* of each is reference *i*.
Block = tuple[array, array]

#: The columnar form of a generator: ``draw(count)`` returns the next
#: ``count`` references of the stream as a :data:`Block`.
Drawer = Callable[[int], Block]

#: Default block granularity for block streaming APIs: large enough to
#: amortize the per-block Python overhead, small enough that partial
#: blocks at warmup/total boundaries stay cheap to split.
DEFAULT_BLOCK_SIZE = 4096

_repeat = itertools.repeat


def make_block(lines: Sequence[int], writes: Sequence[bool]) -> Block:
    """Typed block columns from plain sequences (u32 lines where they
    fit, u64 otherwise — the trace wire format enforces u32 later)."""
    try:
        line_column = array(U32_TYPECODE, lines)
    except OverflowError:
        line_column = array("Q", lines)
    return line_column, array(WRITE_TYPECODE, writes)


def concat_blocks(blocks: Sequence[Block]) -> Block:
    """One block from many (stage boundaries inside one draw)."""
    if len(blocks) == 1:
        return blocks[0]
    if not blocks:
        return array(U32_TYPECODE), array(WRITE_TYPECODE)
    lines = array(blocks[0][0].typecode)
    writes = array(WRITE_TYPECODE)
    for block_lines, block_writes in blocks:
        try:
            lines.extend(block_lines)
        except OverflowError:
            lines = array("Q", lines)
            lines.extend(block_lines)
        writes.extend(block_writes)
    return lines, writes


def blocks_from_drawer(drawer: Drawer,
                       block_size: int = DEFAULT_BLOCK_SIZE,
                       ) -> Iterator[Block]:
    """An endless block stream from a drawer (fixed-size blocks)."""
    while True:
        yield drawer(block_size)


def drawer_from_iterator(refs: Iterator[Ref]) -> Drawer:
    """Adapt any scalar generator as a drawer (the generic fallback:
    correctness for free, none of the columnar speedup)."""
    pull = refs.__next__

    def draw(count: int) -> Block:
        lines: list[int] = []
        writes: list[bool] = []
        append_line = lines.append
        append_write = writes.append
        for _ in _repeat(None, count):
            line, is_write = pull()
            append_line(line)
            append_write(is_write)
        return make_block(lines, writes)

    return draw


@dataclass(frozen=True)
class Region:
    """A contiguous range of line indices: [base, base + n_lines)."""

    base: int
    n_lines: int

    def __post_init__(self) -> None:
        if self.n_lines <= 0 or self.base < 0:
            raise ConfigurationError("region must be non-empty, non-negative")

    @property
    def end(self) -> int:
        return self.base + self.n_lines


def sequential(region: Region, write_fraction: float = 0.0,
               rng: random.Random | None = None) -> Iterator[Ref]:
    """Stream sequentially through the region, wrapping forever (art-like).

    ``write_fraction`` of references are writes, decided per reference."""
    rng = rng or random.Random(0)
    for offset in itertools.cycle(range(region.n_lines)):
        yield region.base + offset, rng.random() < write_fraction


def sequential_drawer(region: Region, write_fraction: float = 0.0,
                      rng: random.Random | None = None) -> Drawer:
    """Block twin of :func:`sequential`: lines come from wrap-around
    slices of one precomputed ring, so only the write bits cost a Python
    operation per reference (one ``rng.random()`` each, same as scalar —
    the draw happens even at fraction 0.0 to keep the streams aligned)."""
    rng = rng or random.Random(0)
    ring = array(U32_TYPECODE, range(region.base, region.end))
    n = region.n_lines
    rnd = rng.random
    offset = 0

    def draw(count: int) -> Block:
        nonlocal offset
        end = offset + count
        if end <= n:
            lines = ring[offset:end]
            offset = end % n
        else:
            lines = ring[offset:]
            end -= n
            while end >= n:
                lines = lines + ring
                end -= n
            lines = lines + ring[:end]
            offset = end
        writes = array(
            WRITE_TYPECODE,
            [rnd() < write_fraction for _ in _repeat(None, count)],
        )
        return lines, writes

    return draw


def strided(region: Region, stride_lines: int,
            write_fraction: float = 0.0,
            rng: random.Random | None = None) -> Iterator[Ref]:
    """Column-major walk: step by ``stride_lines``, wrapping with a +1 skew
    at each wrap so every line is eventually touched (ammp-like).

    When the stride equals an SNC's set count, every reference in one
    column lands in the same set — the Figure 7 conflict pathology."""
    if stride_lines <= 0:
        raise ConfigurationError("stride must be positive")
    rng = rng or random.Random(0)
    offset = 0
    while True:
        yield region.base + offset, rng.random() < write_fraction
        offset += stride_lines
        if offset >= region.n_lines:
            offset = (offset + 1) % stride_lines


def strided_drawer(region: Region, stride_lines: int,
                   write_fraction: float = 0.0,
                   rng: random.Random | None = None) -> Drawer:
    """Block twin of :func:`strided`.  The offsets draw no randomness,
    so computing all lines first and all write bits second preserves the
    scalar RNG order exactly."""
    if stride_lines <= 0:
        raise ConfigurationError("stride must be positive")
    rng = rng or random.Random(0)
    base, n = region.base, region.n_lines
    rnd = rng.random
    offset = 0

    def draw(count: int) -> Block:
        nonlocal offset
        lines: list[int] = []
        append_line = lines.append
        step = stride_lines
        cursor = offset
        for _ in _repeat(None, count):
            append_line(base + cursor)
            cursor += step
            if cursor >= n:
                cursor = (cursor + 1) % step
        offset = cursor
        writes = array(
            WRITE_TYPECODE,
            [rnd() < write_fraction for _ in _repeat(None, count)],
        )
        return array(U32_TYPECODE, lines), writes

    return draw


def random_uniform(region: Region, write_fraction: float,
                   rng: random.Random) -> Iterator[Ref]:
    """Uniform random lines in the region (hash-table-ish)."""
    while True:
        line = region.base + rng.randrange(region.n_lines)
        yield line, rng.random() < write_fraction


def random_uniform_drawer(region: Region, write_fraction: float,
                          rng: random.Random) -> Drawer:
    """Block twin of :func:`random_uniform`.  The line and write draws
    interleave in the shared RNG, so the loop stays per-reference — the
    win is shedding the generator frame and tuple per pull."""
    base, n = region.base, region.n_lines

    def draw(count: int) -> Block:
        randrange = rng.randrange
        rnd = rng.random
        lines: list[int] = []
        writes: list[bool] = []
        append_line = lines.append
        append_write = writes.append
        for _ in _repeat(None, count):
            append_line(base + randrange(n))
            append_write(rnd() < write_fraction)
        return array(U32_TYPECODE, lines), array(WRITE_TYPECODE, writes)

    return draw


def pointer_chase(region: Region, write_fraction: float,
                  rng: random.Random) -> Iterator[Ref]:
    """A pseudo-random permutation walk (mcf-like dependent loads).

    Uses a full-period LCG over the region so the chase visits every line
    before repeating, like chasing a shuffled linked list."""
    n = region.n_lines
    # Full-period LCG (Hull–Dobell): a-1 divisible by all prime factors of
    # n... guaranteeing that generically is fiddly; walk a shuffled cycle
    # instead, which is exact and cheap.
    order = list(range(n))
    rng.shuffle(order)
    position = 0
    while True:
        yield region.base + order[position], rng.random() < write_fraction
        position = (position + 1) % n


def pointer_chase_drawer(region: Region, write_fraction: float,
                         rng: random.Random) -> Drawer:
    """Block twin of :func:`pointer_chase`.  The shuffle happens on the
    *first draw*, not at construction — the scalar generator's body (and
    its ``rng.shuffle``) only runs on the first pull, and composed
    patterns rely on that laziness for RNG alignment."""
    n = region.n_lines
    rnd = rng.random
    chase: array | None = None
    position = 0

    def draw(count: int) -> Block:
        nonlocal chase, position
        if chase is None:
            order = list(range(n))
            rng.shuffle(order)
            base = region.base
            chase = array(U32_TYPECODE, [base + step for step in order])
        end = position + count
        if end <= n:
            lines = chase[position:end]
            position = end % n
        else:
            lines = chase[position:]
            end -= n
            while end >= n:
                lines = lines + chase
                end -= n
            lines = lines + chase[:end]
            position = end
        writes = array(
            WRITE_TYPECODE,
            [rnd() < write_fraction for _ in _repeat(None, count)],
        )
        return lines, writes

    return draw


def _zipf_buckets(region: Region, alpha: float, bucket_count: int,
                  ) -> tuple[list[Region], list[float]]:
    """The geometric bucket split and cumulative selection table shared
    by :func:`zipf_lines` and :func:`zipf_lines_drawer` (deterministic —
    no RNG draws happen here)."""
    buckets: list[Region] = []
    weights: list[float] = []
    base = region.base
    remaining = region.n_lines
    size = max(1, region.n_lines // (2 ** min(bucket_count, 20)))
    rank = 1
    while remaining > 0 and len(buckets) < bucket_count:
        take_lines = min(size, remaining)
        buckets.append(Region(base, take_lines))
        weights.append(1.0 / rank ** alpha)
        base += take_lines
        remaining -= take_lines
        size *= 2
        rank += 1
    if remaining > 0:
        buckets.append(Region(base, remaining))
        weights.append(1.0 / rank ** alpha)
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    return buckets, cumulative


def zipf_lines(region: Region, write_fraction: float, rng: random.Random,
               alpha: float = 1.0, bucket_count: int = 64) -> Iterator[Ref]:
    """Zipf-like skewed popularity over the region (hot-head, long tail).

    Implemented as a bucketed approximation: the region is split into
    ``bucket_count`` geometrically growing buckets whose selection
    probability decays by rank, which yields the classic 'hit rate grows
    with the log of capacity' curve (mcf's SNC behaviour)."""
    buckets, cumulative = _zipf_buckets(region, alpha, bucket_count)
    n_buckets = len(cumulative)
    while True:
        # bisect over the cumulative table = the first edge >= u, exactly
        # the bucket the linear scan used to pick (u past the last edge —
        # float round-off headroom — redraws, as falling off the scan did).
        index = bisect_left(cumulative, rng.random())
        if index == n_buckets:
            continue
        bucket = buckets[index]
        line = bucket.base + rng.randrange(bucket.n_lines)
        yield line, rng.random() < write_fraction


def zipf_lines_drawer(region: Region, write_fraction: float,
                      rng: random.Random, alpha: float = 1.0,
                      bucket_count: int = 64) -> Drawer:
    """Block twin of :func:`zipf_lines` (same buckets, same draw order:
    selection, line, write bit — redraws included)."""
    buckets, cumulative = _zipf_buckets(region, alpha, bucket_count)
    n_buckets = len(cumulative)
    bases = [bucket.base for bucket in buckets]
    sizes = [bucket.n_lines for bucket in buckets]

    def draw(count: int) -> Block:
        rnd = rng.random
        randrange = rng.randrange
        bisect = bisect_left
        lines: list[int] = []
        writes: list[bool] = []
        append_line = lines.append
        append_write = writes.append
        emitted = 0
        while emitted < count:
            index = bisect(cumulative, rnd())
            if index == n_buckets:
                continue
            append_line(bases[index] + randrange(sizes[index]))
            append_write(rnd() < write_fraction)
            emitted += 1
        return array(U32_TYPECODE, lines), array(WRITE_TYPECODE, writes)

    return draw


def _mixture_cumulative(weights: Sequence[float]) -> list[float]:
    total = sum(weights)
    if total <= 0:
        raise ConfigurationError("mixture weights must sum to > 0")
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    return cumulative


def mixture(components: Sequence[tuple[Iterator[Ref], float]],
            rng: random.Random) -> Iterator[Ref]:
    """Interleave component generators with the given probabilities."""
    generators = [component for component, _ in components]
    cumulative = _mixture_cumulative(
        [weight for _, weight in components]
    )
    n_components = len(cumulative)
    while True:
        index = bisect_left(cumulative, rng.random())
        if index == n_components:
            continue
        yield next(generators[index])


def mixture_drawer(components: Sequence[tuple[Iterator[Ref], float]],
                   rng: random.Random) -> Drawer:
    """Block twin of :func:`mixture`.  Components stay *scalar*
    iterators — each selection draw decides which component is pulled
    next, so component draws cannot be batched without reordering the
    shared RNG — but the per-reference tower of generator frames
    (mixture -> component) collapses to one bound ``__next__`` call."""
    pulls = [component.__next__ for component, _ in components]
    cumulative = _mixture_cumulative(
        [weight for _, weight in components]
    )
    n_components = len(cumulative)

    def draw(count: int) -> Block:
        rnd = rng.random
        bisect = bisect_left
        lines: list[int] = []
        writes: list[bool] = []
        append_line = lines.append
        append_write = writes.append
        emitted = 0
        while emitted < count:
            index = bisect(cumulative, rnd())
            if index == n_components:
                continue
            line, is_write = pulls[index]()
            append_line(line)
            append_write(is_write)
            emitted += 1
        return array(U32_TYPECODE, lines), array(WRITE_TYPECODE, writes)

    return draw


def phases(stages: Sequence[tuple[Iterator[Ref], int]]) -> Iterator[Ref]:
    """Run each stage for a fixed number of references, then loop the
    final stage forever (gcc-like init-then-main-loop structure)."""
    if not stages:
        raise ConfigurationError("phases needs at least one stage")
    for generator, count in stages[:-1]:
        yield from itertools.islice(generator, count)
    final_generator, final_count = stages[-1]
    while True:
        yield from itertools.islice(final_generator, final_count)


def phases_drawer(stages: Sequence[tuple[Drawer, int]]) -> Drawer:
    """Block twin of :func:`phases`, over stage *drawers*.

    A draw spanning a stage boundary splits the request so each stage
    drawer produces exactly its stage's count — the RNG consumption per
    stage matches the scalar ``islice`` pulls to the reference.  The
    final stage, like the scalar loop, is drawn from forever (its count
    is the loop granularity there and is irrelevant here)."""
    if not stages:
        raise ConfigurationError("phases needs at least one stage")
    pending = list(stages[:-1])
    final_drawer = stages[-1][0]
    index = 0
    remaining = pending[0][1] if pending else 0

    def draw(count: int) -> Block:
        nonlocal index, remaining
        parts: list[Block] = []
        need = count
        while need and index < len(pending):
            take_refs = min(need, remaining)
            if take_refs:
                parts.append(pending[index][0](take_refs))
                remaining -= take_refs
                need -= take_refs
            if remaining == 0:
                index += 1
                remaining = (
                    pending[index][1] if index < len(pending) else 0
                )
        if need:
            parts.append(final_drawer(need))
        return concat_blocks(parts)

    return draw


def take(generator: Iterator[Ref], count: int) -> list[Ref]:
    """Materialize ``count`` references (test/debug helper)."""
    return list(itertools.islice(generator, count))


def take_blocks(drawer: Drawer, count: int,
                block_size: int = DEFAULT_BLOCK_SIZE) -> list[Ref]:
    """Materialize ``count`` references from a drawer as scalar tuples,
    drawing in ``block_size`` chunks (test/debug helper — the block
    counterpart of :func:`take`)."""
    refs: list[Ref] = []
    while len(refs) < count:
        lines, writes = drawer(min(block_size, count - len(refs)))
        refs.extend(zip(lines, map(bool, writes)))
    return refs

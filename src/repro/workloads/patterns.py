"""Composable memory reference pattern generators.

Each generator yields ``(line_index, is_write)`` pairs at *L2-input*
granularity — i.e. the stream of L1 misses reaching the unified L2 — which
is the level at which the paper's mechanisms act.  Line indices are in
128-byte-line units of the data virtual address space.

The generators are infinite; the workload driver takes as many references
as the configured trace length.  All randomness flows from a caller-owned
``random.Random``, so traces are exactly reproducible.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.errors import ConfigurationError

Ref = tuple[int, bool]


@dataclass(frozen=True)
class Region:
    """A contiguous range of line indices: [base, base + n_lines)."""

    base: int
    n_lines: int

    def __post_init__(self) -> None:
        if self.n_lines <= 0 or self.base < 0:
            raise ConfigurationError("region must be non-empty, non-negative")

    @property
    def end(self) -> int:
        return self.base + self.n_lines


def sequential(region: Region, write_fraction: float = 0.0,
               rng: random.Random | None = None) -> Iterator[Ref]:
    """Stream sequentially through the region, wrapping forever (art-like).

    ``write_fraction`` of references are writes, decided per reference."""
    rng = rng or random.Random(0)
    for offset in itertools.cycle(range(region.n_lines)):
        yield region.base + offset, rng.random() < write_fraction


def strided(region: Region, stride_lines: int,
            write_fraction: float = 0.0,
            rng: random.Random | None = None) -> Iterator[Ref]:
    """Column-major walk: step by ``stride_lines``, wrapping with a +1 skew
    at each wrap so every line is eventually touched (ammp-like).

    When the stride equals an SNC's set count, every reference in one
    column lands in the same set — the Figure 7 conflict pathology."""
    if stride_lines <= 0:
        raise ConfigurationError("stride must be positive")
    rng = rng or random.Random(0)
    offset = 0
    while True:
        yield region.base + offset, rng.random() < write_fraction
        offset += stride_lines
        if offset >= region.n_lines:
            offset = (offset + 1) % stride_lines


def random_uniform(region: Region, write_fraction: float,
                   rng: random.Random) -> Iterator[Ref]:
    """Uniform random lines in the region (hash-table-ish)."""
    while True:
        line = region.base + rng.randrange(region.n_lines)
        yield line, rng.random() < write_fraction


def pointer_chase(region: Region, write_fraction: float,
                  rng: random.Random) -> Iterator[Ref]:
    """A pseudo-random permutation walk (mcf-like dependent loads).

    Uses a full-period LCG over the region so the chase visits every line
    before repeating, like chasing a shuffled linked list."""
    n = region.n_lines
    # Full-period LCG (Hull–Dobell): a-1 divisible by all prime factors of
    # n... guaranteeing that generically is fiddly; walk a shuffled cycle
    # instead, which is exact and cheap.
    order = list(range(n))
    rng.shuffle(order)
    position = 0
    while True:
        yield region.base + order[position], rng.random() < write_fraction
        position = (position + 1) % n


def zipf_lines(region: Region, write_fraction: float, rng: random.Random,
               alpha: float = 1.0, bucket_count: int = 64) -> Iterator[Ref]:
    """Zipf-like skewed popularity over the region (hot-head, long tail).

    Implemented as a bucketed approximation: the region is split into
    ``bucket_count`` geometrically growing buckets whose selection
    probability decays by rank, which yields the classic 'hit rate grows
    with the log of capacity' curve (mcf's SNC behaviour)."""
    buckets: list[Region] = []
    weights: list[float] = []
    base = region.base
    remaining = region.n_lines
    size = max(1, region.n_lines // (2 ** min(bucket_count, 20)))
    rank = 1
    while remaining > 0 and len(buckets) < bucket_count:
        take = min(size, remaining)
        buckets.append(Region(base, take))
        weights.append(1.0 / rank ** alpha)
        base += take
        remaining -= take
        size *= 2
        rank += 1
    if remaining > 0:
        buckets.append(Region(base, remaining))
        weights.append(1.0 / rank ** alpha)
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    while True:
        u = rng.random()
        for bucket, edge in zip(buckets, cumulative):
            if u <= edge:
                line = bucket.base + rng.randrange(bucket.n_lines)
                yield line, rng.random() < write_fraction
                break


def mixture(components: Sequence[tuple[Iterator[Ref], float]],
            rng: random.Random) -> Iterator[Ref]:
    """Interleave component generators with the given probabilities."""
    generators = [component for component, _ in components]
    weights = [weight for _, weight in components]
    total = sum(weights)
    if total <= 0:
        raise ConfigurationError("mixture weights must sum to > 0")
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    while True:
        u = rng.random()
        for generator, edge in zip(generators, cumulative):
            if u <= edge:
                yield next(generator)
                break


def phases(stages: Sequence[tuple[Iterator[Ref], int]]) -> Iterator[Ref]:
    """Run each stage for a fixed number of references, then loop the
    final stage forever (gcc-like init-then-main-loop structure)."""
    if not stages:
        raise ConfigurationError("phases needs at least one stage")
    for generator, count in stages[:-1]:
        yield from itertools.islice(generator, count)
    final_generator, final_count = stages[-1]
    while True:
        yield from itertools.islice(final_generator, final_count)


def take(generator: Iterator[Ref], count: int) -> list[Ref]:
    """Materialize ``count`` references (test/debug helper)."""
    return list(itertools.islice(generator, count))
